//! Subcommand implementations for the `gossip` CLI.

use crate::args::Args;
use gossip_bench::{diff_bench, DiffConfig};
use gossip_core::{
    annotated_concurrent_updown, gossip_lower_bound, optimal_gossip_time, rule_tag_index,
    run_online_threaded_traced, Algorithm, ChurnExecutor, ExactResult, GossipPlanner,
    ResilientExecutor, DEFAULT_MAX_EPOCHS,
};
use gossip_graph::Graph;
use gossip_model::{
    schedule_chrome_trace, simulate_gossip, trace_gossip, trace_gossip_lossy, vertex_trace,
    ChurnPlan, CommModel, FaultPlan, LossCause,
};
use gossip_obsd::{render_dashboard, History, ObsdServer, Paced};
use gossip_telemetry::flight::{Digest, FlightHeader, FlightLog, FlightRecorder, Tee};
use gossip_telemetry::{
    check_schema_version, AlertEngine, AlertSink, LiveRegistry, MetricsRecorder, Recorder, RuleSet,
    SharedBuffer, Value, SCHEMA_VERSION,
};
use gossip_workloads::Family;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Usage text shown by `gossip help`.
pub const USAGE: &str = "\
gossip — communication schedules for the multicast gossiping problem
          (Gonzalez, IPPS 2001: n + r rounds on any network of radius r)

commands:
  generate  --family F --n N [--seed S] [--out FILE] [--compact]
                                                       emit a graph as JSON
  plan      (--family F --n N | --graph FILE|NAME)
            [--algorithm concurrent-updown|simple|updown|telephone]
            [--planner fast|reference|both]
            [--stages all|tree]
            [--engine oracle|kernel|both]
            [--out FILE] [--trace-out FILE [--wall]]
            [--profile-out PROF.json]
            [--flight-out FILE.gfr]                    build + verify a schedule;
                                                       --planner fast runs the
                                                       CSR-direct pipeline, both
                                                       cross-checks it against the
                                                       reference; --stages tree stops
                                                       after the spanning tree (the
                                                       plan-at-scale mode: past
                                                       n = 65536 a full schedule
                                                       overflows u32 CSR offsets)
  profile   (GRAPH | --family F --n N | --graph FILE|NAME)
            [--algorithm A] [--planner fast|reference]
            [--out PROF.json]
            [--flame FILE]                             plan under the phase profiler:
                                                       per-phase time + work counters
                                                       (and heap attribution with the
                                                       prof-alloc build)
  trace     --family F --n N --vertex V                per-vertex table (paper style)
  bounds    --family F --n N                           lower bounds for a network
  exact     --family F --n N [--model telephone]       exact optimum (n <= 8)
  sweep     [--sizes 16,32,64] [--seed S]              n + r across all families
  analyze   (--family F --n N | --graph FILE) [--gantt] schedule profile
  compare   (--family F --n N | --graph FILE)           all algorithms side by side
  line      --n N (N <= 6)                              the n + r - 1 line schedule
  pipeline  --family F --n N [--batches K]              repeated-gossip overlap
  energy    --n N [--range R] [--seed S]                sensor-field energy model
  provenance (--family F --n N | --graph FILE|NAME)
            [--out FILE] [--message M]                 causal first-delivery DAG:
                                                       critical paths, slack vs n + r
  recover   (--family F --n N | --graph FILE|NAME)
            [--loss-rate P] [--crash V@T[,V@T..]]
            [--outage U-V@A..B[,..]] [--fault-seed S]
            [--max-epochs K] [--out FILE]
            [--trace-out FILE] [--flight-out FILE.gfr] run under faults + self-heal;
                                                       exit 1 if recovery falls short
  churn     (--family F --n N | --graph FILE|NAME)
            [--churn-rate P] [--churn-seed S]
            [--churn-plan FILE] [--churn-out FILE]
            [--max-epochs K] [--out FILE]
            [--flight-out FILE.gfr]                    run while a seeded churn plan
                                                       rewires the topology mid-run;
                                                       incremental schedule repair,
                                                       exit 1 if a reachable pair
                                                       is left undelivered
  bench-diff OLD.json NEW.json
            [--threshold PCT] [--wall-factor F]
            [--json]                                   compare BENCH_* artifacts;
                                                       exit 1 on regression; --json
                                                       prints per-field verdicts with
                                                       thresholds and deltas
  stats     METRICS.json|RECOVERY.json|CHURN.json|PROF.json|ALERTS.json|RUN.gfr|-
                                                       summarize a --metrics file, a
                                                       recovery report, a churn
                                                       report, a planner profile, an
                                                       --alerts-out artifact, or a
                                                       flight record (`-` = stdin)
  serve     (--family F --n N | --graph FILE|NAME)
            [--listen ADDR] [--addr-file FILE]
            [--round-delay-ms MS] [--linger-ms MS]
            [fault flags] [--max-epochs K]
            [--flight-out FILE.gfr]                    run the self-healing executor
                                                       under a live HTTP observability
                                                       server; exit 1 if recovery
                                                       falls short
  inspect   RUN.gfr|- [--round R]                      time-travel a flight record:
                                                       reconstructed hold-sets after
                                                       any round, the alert timeline,
                                                       and anomaly flags (`-` = stdin)
  diff      A.gfr B.gfr                                compare two flight records:
                                                       first divergent round, delivery
                                                       deltas; exit 1 unless identical
                                                       (one side may be `-` for stdin)
  dash      ARTIFACT.json|DIR [MORE...]
            [--out report.html] [--check]              aggregate metrics / BENCH_* /
                                                       recovery / profile / flight
                                                       artifacts into one
                                                       self-contained HTML dashboard;
                                                       --check exits 1 when cross-run
                                                       regression detection fires

options accepted by plan / analyze / pipeline / provenance:
  --metrics FILE    record span timings, counters, and per-round simulation
                    probes to FILE (inspect with `gossip stats FILE`);
                    `--metrics -` streams the artifact to stdout (human output
                    moves to stderr), enabling
                      gossip plan --family ring --n 16 --metrics - | gossip stats -

trace export (plan):
  --trace-out FILE  write a Chrome Trace Event Format / Perfetto JSON file:
                    one lane per processor, one slice per multicast (1 round
                    = 1 ms), tagged with the paper rule (U3/U4/D2/D3) that
                    produced it; add --wall to also run the threaded online
                    executor and append its wall-clock lanes

profiling (profile / plan --profile-out):
  the always-on phase profiler breaks schedule construction into a
  self-time/total-time phase tree (BFS sweeps, tree build, labeling,
  generation, CSR flattening, validation) with work counters. `gossip
  profile --out PROF.json` writes a schema-versioned PROF artifact
  (render with `gossip stats`, aggregate with `gossip dash`); --flame
  FILE writes collapsed stacks for flamegraph.pl / speedscope. Binaries
  built with `--features prof-alloc` additionally attribute allocation
  count / bytes / peak live bytes to each phase

live monitoring (serve):
  --listen ADDR        bind address (default 127.0.0.1:9464; port 0 picks a
                       free one)
  --addr-file FILE     write the bound host:port to FILE once listening, so
                       scripts can discover a `--listen 127.0.0.1:0` port
  --round-delay-ms MS  pause after each executed round (default 0) so
                       scrapers can watch `gossip_round_current` advance
  --linger-ms MS       keep serving for MS after the run completes so a
                       final `/metrics` scrape sees the finished state
  endpoints: /metrics (Prometheus text v0.0.4), /healthz (JSON liveness;
  degraded once a critical alert fires), /events (NDJSON stream of
  round/loss/epoch events), /alerts (JSON snapshot; /alerts/stream NDJSON)

alerting (plan / recover / churn / serve):
  --alerts [RULES.json]  evaluate streaming invariant monitors against the
                         run: round stall, knowledge-curve flatline,
                         projected breach of the n + r bound (fires before
                         the bound is crossed), loss-rate spike, recovery
                         epoch budget burn, churn invalidation storm. With
                         no file the built-in rule set runs; a JSON rule
                         file replaces it (severities info|warn|critical).
                         Fired alerts print after the run, land in the
                         flight record (`gossip inspect` timeline), count
                         into gossip_alerts_total{rule,severity}, and are
                         served on /alerts
  --alerts-fatal         exit 1 if any alert fired (implies --alerts)
  --alerts-out FILE      write fired alerts as a JSON artifact (implies
                         --alerts; render with `gossip stats FILE`)

flight recording (plan / recover / serve):
  --flight-out FILE.gfr  capture the executed run as a compact binary flight
                         record: every attempted transmission, suppressed
                         delivery, round boundary, and repair epoch, plus a
                         run fingerprint (graph / schedule / fault digests).
                         `plan` records a clean run (oracle or kernel per
                         --engine) or, with fault flags, a lossy no-repair
                         run; `recover` and `serve` capture the self-healing
                         execution. Inspect with `gossip inspect`, compare
                         runs with `gossip diff`

fault flags (plan / recover / serve):
  --loss-rate P     drop each delivery independently with probability P
  --crash V@T       crash-stop vertex V at the start of round T
                    (comma-separate for several: 3@5,7@9)
  --outage U-V@A..B link {U,V} down for rounds A..B (comma-separate)
  --fault-seed S    seed of the deterministic loss sampler (default 0)
  `plan` with fault flags additionally reports what a lossy run would lose
  (no repair); `recover` and `serve` run the self-healing executor

churn flags (churn):
  --churn-rate P    per-round probability of a topology event (default 0.05)
  --churn-seed S    seed of the deterministic churn generator (default 0)
  --churn-plan FILE replay a saved JSON churn plan instead of generating one
  --churn-out FILE  write the plan that ran (generated or loaded) as JSON,
                    so a generated run can be replayed exactly

--graph also accepts the paper's named instances: petersen (N2), n1 (the
Fig 1 ring, size --n), fig4, fig5 — and the generator specs
unit-disk:n,radius (seeded random geometric graph via --seed; the radius
grows by 1.25x until the field is connected) and gnp:n,p (seeded connected
G(n, p) via --seed; unlike the random-sparse family's fixed p = 0.1, the
density is explicit — at scale use p ~ 16/n to keep m ∝ n)

--algo is accepted as shorthand for --algorithm, and `concurrent` for
`concurrent-updown`

verification engines (plan):
  --engine kernel   flat-CSR bitset replay (SimKernel) — the default
  --engine oracle   the reference Simulator
  --engine both     run both, cross-check the outcomes, report timings;
                    --metrics always runs the oracle too (per-round probes
                    are an oracle feature)

families: path ring star complete binary-tree caterpillar grid torus
          hypercube random-tree random-sparse";

/// A `--metrics FILE` recorder: the buffer captures the JSONL event stream
/// so [`write_metrics`] can bundle it with the final snapshot.
struct Metrics {
    recorder: MetricsRecorder,
    events: SharedBuffer,
    path: String,
}

/// Opens a telemetry recorder when `--metrics FILE` was passed (any
/// subcommand that plans or simulates honors the flag). The parser stores
/// value-less options as `"true"`, which is never a sensible metrics path —
/// reject it rather than silently writing a file named `true`.
fn open_metrics(args: &Args) -> Result<Option<Metrics>, String> {
    match args.options.get("metrics") {
        Some(path) if path == "true" => {
            Err("--metrics requires a file path (e.g. --metrics out.json)".to_string())
        }
        Some(path) => {
            let events = SharedBuffer::new();
            Ok(Some(Metrics {
                recorder: MetricsRecorder::with_sink(Box::new(events.clone())),
                events,
                path: path.clone(),
            }))
        }
        None => Ok(None),
    }
}

/// Writes the metrics artifact consumed by `gossip stats`:
/// `{"schema_version": 1, "snapshot": {...}, "events": [...]}`.
/// With `--metrics -` the artifact goes to stdout (machine output owns the
/// stream; see [`Out`]).
fn write_metrics(m: &Metrics) -> Result<(), String> {
    m.recorder.flush();
    let doc = Value::Object(vec![
        (
            "schema_version".to_string(),
            Value::from_u64(SCHEMA_VERSION),
        ),
        ("snapshot".to_string(), m.recorder.snapshot()),
        ("events".to_string(), Value::Array(m.events.lines())),
    ]);
    let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    if m.path == "-" {
        println!("{json}");
        eprintln!("wrote metrics to stdout");
    } else {
        std::fs::write(&m.path, json).map_err(|e| format!("{}: {e}", m.path))?;
        println!("wrote metrics to {}", m.path);
    }
    Ok(())
}

/// Where a command's human-readable report goes: stdout normally, stderr
/// when `--metrics -` gives the machine artifact ownership of stdout (so
/// `gossip plan --metrics - | gossip stats -` pipes clean JSON).
#[derive(Clone, Copy)]
struct Out {
    to_stderr: bool,
}

impl Out {
    fn for_metrics(metrics: &Option<Metrics>) -> Out {
        Out {
            to_stderr: metrics.as_ref().is_some_and(|m| m.path == "-"),
        }
    }

    fn line(&self, s: std::fmt::Arguments<'_>) {
        if self.to_stderr {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    }
}

/// `out!(out, "fmt", args...)` — `println!` routed per [`Out`].
macro_rules! out {
    ($out:expr, $($arg:tt)*) => { $out.line(format_args!($($arg)*)) };
}

fn family_by_name(name: &str) -> Result<Family, String> {
    Family::all()
        .iter()
        .copied()
        .find(|f| f.name() == name)
        .ok_or_else(|| format!("unknown family {name:?} (see `gossip help`)"))
}

/// The paper's named instances accepted by `--graph NAME` (checked only
/// when no file of that name exists, so files always win).
fn named_instance(name: &str, args: &Args) -> Result<Option<Graph>, String> {
    Ok(match name {
        "petersen" | "n2" => Some(gossip_workloads::petersen()),
        "n1" => Some(gossip_workloads::n1_ring(args.get_usize("n", 9)?)),
        "fig4" => Some(gossip_workloads::fig4_graph()),
        "fig5" => Some(gossip_workloads::fig5_tree().to_graph()),
        _ => None,
    })
}

/// Parses a `unit-disk:n,radius` spec into a seeded random geometric
/// graph (`--seed` selects the point set; the radius grows until the
/// field is connected, matching [`gossip_workloads::unit_disk_connected`]).
fn unit_disk_spec(spec: &str, args: &Args) -> Result<Option<Graph>, String> {
    let Some(params) = spec.strip_prefix("unit-disk:") else {
        return Ok(None);
    };
    let (n_str, r_str) = params.split_once(',').ok_or_else(|| {
        format!("bad unit-disk spec {spec:?}: expected unit-disk:n,radius (e.g. unit-disk:16,0.4)")
    })?;
    let n: usize = n_str
        .trim()
        .parse()
        .map_err(|e| format!("bad unit-disk n {n_str:?}: {e}"))?;
    let radius: f64 = r_str
        .trim()
        .parse()
        .map_err(|e| format!("bad unit-disk radius {r_str:?}: {e}"))?;
    // `radius <= 0.0` (not `!(radius > 0.0)`) would wave NaN through.
    if n == 0 || !radius.is_finite() || radius <= 0.0 {
        return Err(format!(
            "bad unit-disk spec {spec:?}: need n >= 1 and radius > 0"
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let (g, _pts, _used) = gossip_workloads::unit_disk_connected(n, radius, seed);
    Ok(Some(g))
}

/// Loads a graph from a `--graph`-style spec: a `unit-disk:n,radius`
/// generator, a named paper instance (unless a file of that name
/// exists), or a JSON / edge-list file.
/// Parses a `gnp:n,p` spec into a seeded G(n, p) kept connected by
/// bridging components (`--seed` selects the instance). Unlike the
/// `random-sparse` family (fixed p = 0.1), this exposes the edge density —
/// the scale sweeps need m ∝ n, not m ∝ n².
fn gnp_spec(spec: &str, args: &Args) -> Result<Option<Graph>, String> {
    let Some(params) = spec.strip_prefix("gnp:") else {
        return Ok(None);
    };
    let (n_str, p_str) = params.split_once(',').ok_or_else(|| {
        format!("bad gnp spec {spec:?}: expected gnp:n,p (e.g. gnp:65536,0.00025)")
    })?;
    let n: usize = n_str
        .trim()
        .parse()
        .map_err(|e| format!("bad gnp n {n_str:?}: {e}"))?;
    let p: f64 = p_str
        .trim()
        .parse()
        .map_err(|e| format!("bad gnp p {p_str:?}: {e}"))?;
    // `!(p >= 0.0)` would wave NaN through; check the closed interval.
    if n == 0 || !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(format!(
            "bad gnp spec {spec:?}: need n >= 1 and p in [0, 1]"
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    Ok(Some(gossip_workloads::random_connected(n, p, seed)))
}

fn load_graph_spec(spec: &str, args: &Args) -> Result<Graph, String> {
    if let Some(g) = unit_disk_spec(spec, args)? {
        return Ok(g);
    }
    if let Some(g) = gnp_spec(spec, args)? {
        return Ok(g);
    }
    if !std::path::Path::new(spec).exists() {
        if let Some(g) = named_instance(spec, args)? {
            return Ok(g);
        }
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    // JSON first; fall back to the plain edge-list text format.
    match serde_json::from_str(&text) {
        Ok(g) => Ok(g),
        Err(json_err) => gossip_graph::parse_edge_list(&text)
            .map_err(|el_err| format!("{spec}: not JSON ({json_err}) nor edge list ({el_err})")),
    }
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    if let Some(path) = args.options.get("graph") {
        load_graph_spec(path, args)
    } else {
        let family = family_by_name(args.get_or("family", "ring"))?;
        let n = args.get_usize("n", 16)?;
        let seed = args.get_u64("seed", 0)?;
        Ok(family.instance(n, seed))
    }
}

/// `gossip generate`: write a family instance as JSON.
pub fn generate(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    // --compact emits single-line JSON for piping; default is pretty.
    let json = if args.flag("compact") {
        serde_json::to_string(&g).map_err(|e| e.to_string())?
    } else {
        serde_json::to_string_pretty(&g).map_err(|e| e.to_string())?
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote graph (n = {}, m = {}) to {path}", g.n(), g.m());
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Serialized form of a plan for `--out`.
#[derive(Serialize, Deserialize)]
struct PlanArtifact {
    schema_version: u64,
    algorithm: String,
    n: usize,
    radius: u32,
    makespan: usize,
    origin_of_message: Vec<usize>,
    schedule: gossip_model::Schedule,
}

/// Builds a [`FaultPlan`] from the fault flags (`--loss-rate`, `--crash`,
/// `--outage`, `--fault-seed`). Returns `None` when no fault flag was
/// passed, so fault-free invocations skip the lossy path entirely.
fn parse_fault_plan(args: &Args, n: usize) -> Result<Option<FaultPlan>, String> {
    let any = ["loss-rate", "crash", "outage", "fault-seed"]
        .iter()
        .any(|k| args.options.contains_key(*k));
    if !any {
        return Ok(None);
    }
    let mut plan = FaultPlan::new(args.get_u64("fault-seed", 0)?)
        .with_loss_rate(args.get_f64("loss-rate", 0.0)?);
    if let Some(spec) = args.options.get("crash") {
        plan = plan.with_crash_spec(spec)?;
    }
    if let Some(spec) = args.options.get("outage") {
        plan = plan.with_outage_spec(spec)?;
    }
    plan.validate(n)?;
    Ok(Some(plan))
}

/// One line per loss cause: `sampled 12, not-held 31, ...` (zero counts
/// omitted).
fn loss_breakdown(lost: &[gossip_model::LostDelivery]) -> String {
    let causes = [
        (LossCause::Sampled, "sampled"),
        (LossCause::LinkDown, "link-down"),
        (LossCause::SenderCrashed, "sender-crashed"),
        (LossCause::ReceiverCrashed, "receiver-crashed"),
        (LossCause::NotHeld, "not-held"),
    ];
    let parts: Vec<String> = causes
        .iter()
        .filter_map(|&(cause, name)| {
            let count = lost.iter().filter(|l| l.cause == cause).count();
            (count > 0).then(|| format!("{name} {count}"))
        })
        .collect();
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(", ")
    }
}

/// FNV-1a fingerprint of the network: `n` plus every directed adjacency
/// entry in vertex order. Stored in the `.gfr` header so `gossip diff`
/// can flag captures taken on different graphs.
fn graph_digest(g: &Graph) -> u64 {
    let mut d = Digest::new();
    d.write_u64(g.n() as u64);
    for v in 0..g.n() {
        for u in g.neighbors(v) {
            d.write_u64(v as u64);
            d.write_u64(u as u64);
        }
    }
    d.finish()
}

/// Digest of a fault plan's JSON serialization; clean runs (no fault
/// flags) record 0, per the `.gfr` header contract.
fn fault_digest(faults: &Option<FaultPlan>) -> Result<u64, String> {
    match faults {
        None => Ok(0),
        Some(f) => {
            let json = serde_json::to_string(f).map_err(|e| e.to_string())?;
            let mut d = Digest::new();
            d.write_bytes(json.as_bytes());
            Ok(d.finish())
        }
    }
}

/// Parses `--flight-out FILE.gfr`, rejecting the parser's value-less
/// `"true"` sentinel (same treatment as `--metrics`).
fn flight_out_path(args: &Args) -> Result<Option<String>, String> {
    match args.options.get("flight-out") {
        Some(p) if p == "true" => {
            Err("--flight-out requires a file path (e.g. --flight-out run.gfr)".to_string())
        }
        other => Ok(other.cloned()),
    }
}

/// Parses a path-valued option, rejecting the parser's value-less
/// `"true"` sentinel (same treatment as `--metrics` / `--flight-out`).
fn path_option(args: &Args, key: &str) -> Result<Option<String>, String> {
    match args.options.get(key) {
        Some(p) if p == "true" => Err(format!("--{key} requires a file path")),
        other => Ok(other.cloned()),
    }
}

/// Builds the `.gfr` run fingerprint shared by every recording command.
fn flight_header(
    engine: &str,
    g: &Graph,
    radius: u32,
    flat: &gossip_model::FlatSchedule,
    faults: &Option<FaultPlan>,
    origins: &[usize],
) -> Result<FlightHeader, String> {
    Ok(FlightHeader {
        n: g.n() as u32,
        n_msgs: origins.len() as u32,
        radius,
        engine: engine.to_string(),
        graph_digest: graph_digest(g),
        schedule_digest: flat.digest(),
        fault_digest: fault_digest(faults)?,
        origins: origins.iter().map(|&o| o as u32).collect(),
    })
}

/// Writes a finished flight capture to `path`.
fn write_flight(path: &str, rec: &FlightRecorder, out: Out) -> Result<(), String> {
    let bytes = rec.finish();
    std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
    out!(
        out,
        "wrote flight record ({} record(s), {} bytes) to {path} — inspect with `gossip inspect {path}`",
        rec.len(),
        bytes.len()
    );
    Ok(())
}

/// Reads and decodes one `.gfr` capture; `-` reads the capture from
/// stdin (same convention as `gossip stats -`), so a recording command
/// can pipe straight into `gossip inspect -`.
fn read_flight(path: &str) -> Result<FlightLog, String> {
    let bytes = if path == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("{path}: {e}"))?
    };
    if !FlightLog::sniff(&bytes) {
        return Err(format!("{path}: not a flight record (bad magic)"));
    }
    FlightLog::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// Parses the watchdog flags shared by `plan` / `recover` / `churn` /
/// `serve`. Returns the rule set to monitor with, or `None` when no
/// alert flag was passed. `--alerts RULES.json` loads a declarative rule
/// file (which *replaces* the default set); a bare `--alerts` — or
/// `--alerts-fatal` / `--alerts-out` on their own — monitors with the
/// default rules.
fn parse_alert_rules(args: &Args) -> Result<Option<RuleSet>, String> {
    let wanted = ["alerts", "alerts-fatal", "alerts-out"]
        .iter()
        .any(|k| args.options.contains_key(*k));
    if !wanted {
        return Ok(None);
    }
    match args.options.get("alerts").map(String::as_str) {
        None | Some("true") => Ok(Some(RuleSet::default())),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            text.parse::<RuleSet>()
                .map(Some)
                .map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// The watchdog epilogue shared by every monitored command: disarms the
/// wall-clock poll, prints the fired alerts (or the all-clear), and
/// writes the `kind: "alerts"` artifact when `--alerts-out` asked for
/// one. Returns how many alerts fired so callers can apply
/// `--alerts-fatal` *after* their own pass/fail verdict.
fn alerts_epilogue(sink: &Arc<AlertSink>, args: &Args, out: Out) -> Result<usize, String> {
    sink.set_done();
    let alerts = sink.alerts();
    if alerts.is_empty() {
        out!(out, "alerts: none fired");
    } else {
        out!(
            out,
            "alerts: {} fired{}",
            alerts.len(),
            if sink.has_critical() {
                " (critical)"
            } else {
                ""
            }
        );
        for a in &alerts {
            out!(
                out,
                "  round {:>3}: [{}] {} — {}",
                a.round,
                a.severity.label(),
                a.rule,
                a.message
            );
        }
    }
    if let Some(path) = path_option(args, "alerts-out")? {
        let json = serde_json::to_string_pretty(&sink.to_value()).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote alerts artifact to {path} — render with `gossip stats {path}`"
        );
    }
    Ok(alerts.len())
}

/// `--alerts-fatal`: exit nonzero when any alert fired. Applied after a
/// command's own verdict so a failed run reports its primary error, not
/// the watchdog's.
fn alerts_fatal(args: &Args, fired: usize) -> Result<(), String> {
    if args.options.contains_key("alerts-fatal") && fired > 0 {
        Err(format!("--alerts-fatal: {fired} alert(s) fired"))
    } else {
        Ok(())
    }
}

/// Parses `--algorithm` (or its `--algo` shorthand); `concurrent` and
/// `cud` are accepted for `concurrent-updown`.
fn parse_algorithm(args: &Args) -> Result<Algorithm, String> {
    let name = args
        .options
        .get("algorithm")
        .or_else(|| args.options.get("algo"))
        .map(String::as_str)
        .unwrap_or("concurrent-updown");
    match name {
        "concurrent-updown" | "concurrent" | "cud" => Ok(Algorithm::ConcurrentUpDown),
        "simple" => Ok(Algorithm::Simple),
        "updown" => Ok(Algorithm::UpDown),
        "telephone" => Ok(Algorithm::Telephone),
        other => Err(format!("unknown algorithm {other:?}")),
    }
}

/// Which planning path `gossip plan` / `gossip profile` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Planner {
    /// The reference pipeline: n-sweep tree + `Schedule` generator (default).
    Reference,
    /// The fast pipeline: pruned multi-source bitset tree sweep + CSR-direct
    /// generator (ConcurrentUpDown only).
    Fast,
    /// Reference plan plus a fast-path cross-check: the fast schedule must
    /// validate, complete gossip, and meet the same `n + r` bound (and be
    /// byte-identical when the trees agree).
    Both,
}

/// Parses `--planner fast|reference|both` (default `reference`).
fn parse_planner(args: &Args) -> Result<Planner, String> {
    match args.options.get("planner").map(String::as_str) {
        None | Some("reference") => Ok(Planner::Reference),
        Some("fast") => Ok(Planner::Fast),
        Some("both") => Ok(Planner::Both),
        Some(other) => Err(format!(
            "--planner must be fast, reference, or both (got {other})"
        )),
    }
}

/// Parses `--stages all|tree` (default `all`); `tree` stops after the
/// spanning tree + label arena — the plan-at-scale mode for sizes whose
/// full schedule cannot be materialized (gossip delivers exactly n(n-1)
/// messages, which overflows u32 CSR offsets past n = 65536).
fn parse_tree_only(args: &Args) -> Result<bool, String> {
    match args.options.get("stages").map(String::as_str) {
        None | Some("all") => Ok(false),
        Some("tree") => Ok(true),
        Some(other) => Err(format!("--stages must be all or tree (got {other})")),
    }
}

/// `gossip plan`: build, verify, and summarize (optionally dump) a schedule.
/// Which verification engine `gossip plan` runs after building a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// The reference [`gossip_model::Simulator`] (hash/Vec state).
    Oracle,
    /// The flat-CSR bitset [`gossip_model::SimKernel`] (the default).
    Kernel,
    /// Both, cross-checked outcome-for-outcome, with timings reported.
    Both,
}

/// Parses `--engine oracle|kernel|both` (default `kernel`).
fn parse_engine(args: &Args) -> Result<Engine, String> {
    match args.options.get("engine").map(String::as_str) {
        None | Some("kernel") => Ok(Engine::Kernel),
        Some("oracle") => Ok(Engine::Oracle),
        Some("both") => Ok(Engine::Both),
        Some(other) => Err(format!(
            "--engine must be oracle, kernel, or both (got {other})"
        )),
    }
}

pub fn plan(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let alg = parse_algorithm(args)?;
    let planner_mode = parse_planner(args)?;
    if planner_mode != Planner::Reference && alg != Algorithm::ConcurrentUpDown {
        return Err("--planner fast/both implements concurrent-updown only".into());
    }
    if parse_tree_only(args)? {
        return plan_tree_only(args, &g, planner_mode);
    }
    if planner_mode == Planner::Fast {
        return plan_fast_only(args, &g);
    }
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .algorithm(alg);
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    // --profile-out: install the phase profiler across construction and
    // engine verification, so the artifact also captures the kernel
    // path's flatten / validate phases.
    let profile_out = path_option(args, "profile-out")?;
    let profiler = profile_out
        .as_ref()
        .map(|_| gossip_telemetry::profile::Profiler::begin());
    let t_profile = std::time::Instant::now();
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let model = if alg == Algorithm::Telephone {
        CommModel::Telephone
    } else {
        CommModel::Multicast
    };
    let engine = parse_engine(args)?;
    // Per-round probes are an oracle feature, so --metrics always runs the
    // reference Simulator; the kernel engine then verifies on top of it.
    let want_oracle = engine != Engine::Kernel || metrics.is_some();
    let want_kernel = engine != Engine::Oracle;
    let mut oracle_outcome = None;
    let mut oracle_ms = 0.0;
    if want_oracle {
        let t0 = std::time::Instant::now();
        let mut sim = gossip_model::Simulator::with_origins(&g, model, &plan.origin_of_message)
            .map_err(|e| e.to_string())?;
        // The recorded run enforces the same model rules and additionally
        // streams per-round probes (sent / fan-out / idle / coverage).
        let o = match &metrics {
            Some(m) => sim.run_recorded(&plan.schedule, &m.recorder),
            None => sim.run(&plan.schedule),
        }
        .map_err(|e| e.to_string())?;
        oracle_ms = t0.elapsed().as_secs_f64() * 1e3;
        oracle_outcome = Some(o);
    }
    let mut kernel_outcome = None;
    let mut kernel_ms = 0.0;
    if want_kernel {
        let t0 = std::time::Instant::now();
        let o = gossip_model::validate_gossip_schedule(
            &g,
            &plan.schedule,
            &plan.origin_of_message,
            model,
        )
        .map_err(|e| e.to_string())?;
        kernel_ms = t0.elapsed().as_secs_f64() * 1e3;
        kernel_outcome = Some(o);
    }
    if let (Some(a), Some(b)) = (&oracle_outcome, &kernel_outcome) {
        if a != b {
            return Err(format!(
                "verification engines disagree (bug): oracle {a:?} vs kernel {b:?}"
            ));
        }
    }
    let both_ran = oracle_outcome.is_some() && kernel_outcome.is_some();
    let outcome = kernel_outcome
        .or(oracle_outcome)
        .expect("at least one engine always runs");
    if !outcome.complete {
        return Err("schedule did not complete gossip (bug)".into());
    }
    // --planner both: rebuild through the fast pipeline and cross-check it
    // against the reference plan (inside the profiled window, so the fast
    // phases land in --profile-out artifacts).
    let mut planner_note = None;
    if planner_mode == Planner::Both {
        let t0 = std::time::Instant::now();
        let fast = planner.plan_fast().map_err(|e| e.to_string())?;
        fast.schedule
            .validate(&g, model, fast.origin_of_message.len())
            .map_err(|e| format!("planner cross-check: fast schedule invalid: {e}"))?;
        let mut kern = gossip_model::SimKernel::with_origins(&g, model, &fast.origin_of_message)
            .map_err(|e| e.to_string())?;
        let ko = kern
            .run_prevalidated(&fast.schedule)
            .map_err(|e| e.to_string())?;
        if !ko.complete {
            return Err("planner cross-check: fast schedule did not complete gossip".into());
        }
        if fast.radius != plan.radius {
            return Err(format!(
                "planner cross-check: radii differ (fast {} vs reference {})",
                fast.radius, plan.radius
            ));
        }
        if fast.makespan() != plan.makespan() {
            return Err(format!(
                "planner cross-check: makespans differ (fast {} vs reference {})",
                fast.makespan(),
                plan.makespan()
            ));
        }
        let fast_ms = t0.elapsed().as_secs_f64() * 1e3;
        planner_note = Some(if fast.tree == plan.tree {
            let ref_flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
            if fast.schedule != ref_flat {
                return Err(
                    "planner cross-check: schedules differ on identical trees (bug)".into(),
                );
            }
            format!(
                "planner cross-check: fast path byte-identical (digest {:016x}) in {fast_ms:.2} ms",
                fast.schedule.digest()
            )
        } else {
            format!(
                "planner cross-check: fast path valid at the same n + r = {} \
                 (equal-depth root tie broken differently) in {fast_ms:.2} ms",
                fast.makespan()
            )
        });
    }
    if let (Some(profiler), Some(path)) = (profiler, &profile_out) {
        let profiled_ms = t_profile.elapsed().as_secs_f64() * 1e3;
        let profile = profiler.finish();
        let doc = profile_artifact(&g, alg, plan.radius, plan.makespan(), profiled_ms, &profile);
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote profile to {path} — render with `gossip stats {path}`"
        );
    }
    out!(
        out,
        "network: n = {}, m = {}, radius r = {}",
        g.n(),
        g.m(),
        plan.radius
    );
    out!(out, "algorithm: {}", alg.name());
    match alg {
        Algorithm::ConcurrentUpDown => out!(
            out,
            "makespan: {} rounds (guarantee n + r = {})",
            plan.makespan(),
            plan.guarantee()
        ),
        _ => out!(
            out,
            "makespan: {} rounds (concurrent-updown reference: n + r = {})",
            plan.makespan(),
            plan.guarantee()
        ),
    }
    let stats = plan.schedule.stats();
    out!(
        out,
        "verified ({}): complete; {} transmissions, {} deliveries, max fanout {}",
        match engine {
            Engine::Oracle => "oracle simulator",
            Engine::Kernel => "bitset kernel",
            Engine::Both => "oracle + kernel, outcomes identical",
        },
        stats.transmissions,
        stats.deliveries,
        stats.max_fanout
    );
    if both_ran && engine == Engine::Both {
        out!(
            out,
            "engine timings: oracle {oracle_ms:.2} ms, kernel {kernel_ms:.2} ms ({:.1}x)",
            oracle_ms / kernel_ms.max(1e-9)
        );
    }
    if let Some(note) = &planner_note {
        out!(out, "{note}");
    }
    if let Some(faults) = parse_fault_plan(args, g.n())? {
        // Fault flags: additionally report what a lossy run (no repair)
        // would do to this schedule — losses by cause, DAG gaps, residual.
        let (lossy_out, dag, lost) =
            trace_gossip_lossy(&g, &plan.schedule, &plan.origin_of_message, model, &faults)
                .map_err(|e| e.to_string())?;
        let full_edges = g.n() * (g.n() - 1);
        out!(
            out,
            "under faults (seed {}, loss rate {}): {} of {} deliveries lost ({})",
            faults.seed,
            faults.loss_rate,
            lost.len(),
            stats.deliveries,
            loss_breakdown(&lost)
        );
        out!(
            out,
            "first-delivery DAG: {} of {full_edges} edges; {} (message, vertex) pairs never arrived{}",
            dag.edge_count(),
            full_edges.saturating_sub(dag.edge_count()),
            if lossy_out.complete_among_alive {
                " — complete among survivors despite faults"
            } else {
                " — run `gossip recover` to heal"
            }
        );
        if let Some(m) = &metrics {
            m.recorder.counter("recovery/lost", lost.len() as u64);
        }
    }
    // --alerts: replay the planned schedule through the bitset kernel
    // with the watchdog attached — the bound and loss monitors see the
    // same per-round stream an executor would emit, so a lossy plan
    // (fault flags) surfaces loss_spike / bound alerts without leaving
    // `gossip plan`.
    if let Some(rules) = parse_alert_rules(args)? {
        let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
        let faults = parse_fault_plan(args, g.n())?;
        let engine = AlertEngine::new(&gossip_telemetry::NoopRecorder, rules)
            .bound(plan.guarantee() as u64)
            .total_pairs((g.n() * plan.origin_of_message.len()) as u64);
        let mut sim = gossip_model::SimKernel::with_origins(&g, model, &plan.origin_of_message)
            .map_err(|e| e.to_string())?;
        match &faults {
            Some(f) => {
                let mut lost = Vec::new();
                sim.run_lossy_recorded(&flat, f, &mut lost, &engine)
                    .map_err(|e| e.to_string())?;
            }
            None => {
                sim.run_recorded(&flat, &engine)
                    .map_err(|e| e.to_string())?;
            }
        }
        let sink = engine.sink();
        let fired = alerts_epilogue(&sink, args, out)?;
        alerts_fatal(args, fired)?;
    }
    if let Some(path) = flight_out_path(args)? {
        // A dedicated recording pass: the verification runs above stay
        // untimed by the capture, and fault flags turn the capture into a
        // lossy no-repair run — the natural `gossip diff` partner for a
        // clean capture of the same plan.
        let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
        let faults = parse_fault_plan(args, g.n())?;
        let label = match (&faults, engine) {
            (Some(_), _) => "lossy",
            (None, Engine::Oracle) => "oracle",
            (None, _) => "kernel",
        };
        let header = flight_header(
            label,
            &g,
            plan.radius,
            &flat,
            &faults,
            &plan.origin_of_message,
        )?;
        let flight = FlightRecorder::new(header);
        match &faults {
            Some(f) => {
                let mut sim =
                    gossip_model::SimKernel::with_origins(&g, model, &plan.origin_of_message)
                        .map_err(|e| e.to_string())?;
                let mut lost = Vec::new();
                sim.run_lossy_recorded(&flat, f, &mut lost, &flight)
                    .map_err(|e| e.to_string())?;
            }
            None if engine == Engine::Oracle => {
                let mut sim =
                    gossip_model::Simulator::with_origins(&g, model, &plan.origin_of_message)
                        .map_err(|e| e.to_string())?;
                sim.run_recorded(&plan.schedule, &flight)
                    .map_err(|e| e.to_string())?;
            }
            None => {
                let mut sim =
                    gossip_model::SimKernel::with_origins(&g, model, &plan.origin_of_message)
                        .map_err(|e| e.to_string())?;
                sim.run_recorded(&flat, &flight)
                    .map_err(|e| e.to_string())?;
            }
        }
        write_flight(&path, &flight, out)?;
    }
    if let Some(path) = args.options.get("out") {
        let artifact = PlanArtifact {
            schema_version: SCHEMA_VERSION,
            algorithm: alg.name().to_string(),
            n: g.n(),
            radius: plan.radius,
            makespan: plan.makespan(),
            origin_of_message: plan.origin_of_message.clone(),
            schedule: plan.schedule.clone(),
        };
        let json = serde_json::to_string_pretty(&artifact).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(out, "wrote plan to {path}");
    }
    if let Some(path) = args.options.get("trace-out") {
        if path == "true" {
            return Err("--trace-out requires a file path".into());
        }
        // Logical-round lanes; ConcurrentUpDown slices carry the paper
        // rule (U3/U4/D2/D3/merged) that produced each multicast.
        let mut chrome = if alg == Algorithm::ConcurrentUpDown {
            let tags = rule_tag_index(&annotated_concurrent_updown(&plan.tree));
            schedule_chrome_trace(&plan.schedule, &|t, from| {
                tags.get(&(t, from)).map(|r| r.tag().to_string())
            })
        } else {
            schedule_chrome_trace(&plan.schedule, &|_, _| None)
        };
        // --wall: run the threaded online executor and append its
        // wall-clock lanes (its own pid) to the same file.
        if args.flag("wall") {
            if alg != Algorithm::ConcurrentUpDown {
                return Err("--wall requires the concurrent-updown algorithm".into());
            }
            let (_, wall) = match &metrics {
                Some(m) => run_online_threaded_traced(&plan.tree, &m.recorder),
                None => run_online_threaded_traced(&plan.tree, &gossip_telemetry::NoopRecorder),
            };
            chrome.extend(wall);
        }
        std::fs::write(path, chrome.to_json()).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote Chrome trace ({} events) to {path} — load in chrome://tracing or ui.perfetto.dev",
            chrome.len()
        );
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip plan --planner fast`: the CSR-direct pipeline end to end —
/// pruned bitset tree sweep, flat label arena, straight-into-CSR
/// generation — verified by structural validation plus a bitset-kernel
/// replay. Options that need the reference `Schedule` representation
/// (trace export, plan artifacts, fault injection, the oracle engine) are
/// rejected; use `--planner both` to combine them with a fast cross-check.
fn plan_fast_only(args: &Args, g: &Graph) -> Result<(), String> {
    const NEEDS_REFERENCE: &[&str] = &[
        "engine",
        "trace-out",
        "wall",
        "out",
        "flight-out",
        "loss-rate",
        "crash",
        "outage",
        "fault-seed",
    ];
    if let Some(k) = NEEDS_REFERENCE
        .iter()
        .find(|k| args.options.contains_key(**k))
    {
        return Err(format!(
            "--{k} needs the reference schedule; use --planner reference or both"
        ));
    }
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(g).map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let profile_out = path_option(args, "profile-out")?;
    let profiler = profile_out
        .as_ref()
        .map(|_| gossip_telemetry::profile::Profiler::begin());
    let t0 = std::time::Instant::now();
    let plan = planner.plan_fast().map_err(|e| e.to_string())?;
    plan.schedule
        .validate(g, CommModel::Multicast, plan.origin_of_message.len())
        .map_err(|e| e.to_string())?;
    let plan_ms = t0.elapsed().as_secs_f64() * 1e3;
    if let (Some(profiler), Some(path)) = (profiler, &profile_out) {
        let profile = profiler.finish();
        let doc = profile_artifact(
            g,
            Algorithm::ConcurrentUpDown,
            plan.radius,
            plan.makespan(),
            plan_ms,
            &profile,
        );
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote profile to {path} — render with `gossip stats {path}`"
        );
    }
    let t1 = std::time::Instant::now();
    let mut kernel =
        gossip_model::SimKernel::with_origins(g, CommModel::Multicast, &plan.origin_of_message)
            .map_err(|e| e.to_string())?;
    let outcome = kernel
        .run_prevalidated(&plan.schedule)
        .map_err(|e| e.to_string())?;
    let kernel_ms = t1.elapsed().as_secs_f64() * 1e3;
    if !outcome.complete {
        return Err("schedule did not complete gossip (bug)".into());
    }
    out!(
        out,
        "network: n = {}, m = {}, radius r = {}",
        g.n(),
        g.m(),
        plan.radius
    );
    out!(
        out,
        "algorithm: concurrent-updown (fast planner, CSR-direct)"
    );
    out!(
        out,
        "makespan: {} rounds (guarantee n + r = {})",
        plan.makespan(),
        plan.guarantee()
    );
    let stats = plan.schedule.stats();
    out!(
        out,
        "verified (flat validate + bitset kernel): complete; {} transmissions, {} deliveries, max fanout {}",
        stats.transmissions,
        stats.deliveries,
        stats.max_fanout
    );
    out!(
        out,
        "timings: plan + flatten + validate {plan_ms:.2} ms, kernel replay {kernel_ms:.2} ms"
    );
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip plan --stages tree`: build (and, with `--planner both`,
/// cross-check) only the spanning tree and label arena. This is the
/// plan-at-scale mode: past n = 65536 a full gossip schedule carries more
/// than `u32::MAX` deliveries and cannot be materialized in CSR form, but
/// the tree+label phases — the part the fast sweep accelerates — still run
/// and can be profiled.
fn plan_tree_only(args: &Args, g: &Graph, mode: Planner) -> Result<(), String> {
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let profile_out = path_option(args, "profile-out")?;
    let profiler = profile_out
        .as_ref()
        .map(|_| gossip_telemetry::profile::Profiler::begin());
    let t_all = std::time::Instant::now();
    let order = gossip_graph::ChildOrder::default();
    let recorder: &dyn Recorder = match &metrics {
        Some(m) => &m.recorder,
        None => &gossip_telemetry::NoopRecorder,
    };
    out!(out, "network: n = {}, m = {}", g.n(), g.m());

    let mut radius = 0;
    let mut fast_tree = None;
    if mode != Planner::Reference {
        let t0 = std::time::Instant::now();
        let tree = gossip_graph::min_depth_spanning_tree_fast_recorded(g, order, recorder)
            .map_err(|e| e.to_string())?;
        let tree_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let labels = gossip_core::FlatLabels::new(&tree);
        let label_ms = t1.elapsed().as_secs_f64() * 1e3;
        out!(
            out,
            "fast planner: tree of height r = {} (root {}) in {tree_ms:.2} ms; {} labels in {label_ms:.2} ms",
            tree.height(),
            tree.root(),
            labels.n()
        );
        radius = tree.height();
        fast_tree = Some(tree);
    }
    if mode != Planner::Fast {
        let t0 = std::time::Instant::now();
        let tree = gossip_graph::min_depth_spanning_tree_recorded(g, order, recorder)
            .map_err(|e| e.to_string())?;
        let tree_ms = t0.elapsed().as_secs_f64() * 1e3;
        radius = tree.height();
        out!(
            out,
            "reference planner: tree of height r = {} (root {}) in {tree_ms:.2} ms",
            tree.height(),
            tree.root()
        );
        if let Some(fast) = &fast_tree {
            if fast.height() != tree.height() {
                return Err(format!(
                    "planner cross-check: tree heights differ (fast {} vs reference {})",
                    fast.height(),
                    tree.height()
                ));
            }
            out!(
                out,
                "planner cross-check: equal radius r = {}{}",
                tree.height(),
                if fast.root() == tree.root() {
                    ", same root"
                } else {
                    " (equal-depth root tie broken differently)"
                }
            );
        }
    }
    out!(out, "stages: tree — schedule generation skipped");
    if let (Some(profiler), Some(path)) = (profiler, &profile_out) {
        let wall_ms = t_all.elapsed().as_secs_f64() * 1e3;
        let profile = profiler.finish();
        let doc = profile_artifact(g, Algorithm::ConcurrentUpDown, radius, 0, wall_ms, &profile);
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote profile to {path} — render with `gossip stats {path}`"
        );
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// Builds the schema-versioned PROF artifact (`kind: "profile"`) shared
/// by `gossip profile` and `gossip plan --profile-out`.
fn profile_artifact(
    g: &Graph,
    alg: Algorithm,
    radius: u32,
    makespan: usize,
    plan_ms: f64,
    profile: &gossip_telemetry::profile::Profile,
) -> Value {
    let attributed = profile.attributed_ms().min(plan_ms);
    let pct = if plan_ms > 0.0 {
        100.0 * attributed / plan_ms
    } else {
        100.0
    };
    Value::Object(vec![
        (
            "schema_version".to_string(),
            Value::from_u64(SCHEMA_VERSION),
        ),
        ("kind".to_string(), Value::String("profile".to_string())),
        (
            "algorithm".to_string(),
            Value::String(alg.name().to_string()),
        ),
        ("n".to_string(), Value::from_u64(g.n() as u64)),
        ("m".to_string(), Value::from_u64(g.m() as u64)),
        ("radius".to_string(), Value::from_u64(radius as u64)),
        ("makespan".to_string(), Value::from_u64(makespan as u64)),
        ("plan_ms".to_string(), Value::from_f64(plan_ms)),
        ("attributed_ms".to_string(), Value::from_f64(attributed)),
        (
            "unattributed_ms".to_string(),
            Value::from_f64((plan_ms - attributed).max(0.0)),
        ),
        ("attributed_pct".to_string(), Value::from_f64(pct)),
        (
            "alloc_tracking".to_string(),
            Value::Bool(profile.alloc_tracking()),
        ),
        ("phases".to_string(), profile.to_value()),
    ])
}

/// Renders a PROF phase forest as an indented table: one row per phase
/// with call count, total and self time, plus work counters and (when
/// recorded) allocation stats. Shared by `gossip profile` and `gossip
/// stats`.
fn render_profile_phases(phases: &Value) -> String {
    fn walk(out: &mut String, node: &Value, depth: usize) {
        let name = node.get("name").and_then(Value::as_str).unwrap_or("?");
        let calls = node.get("calls").and_then(Value::as_u64).unwrap_or(0);
        let total = node.get("total_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let selfms = node.get("self_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let label = format!("{}{name}", "  ".repeat(depth));
        let mut extras = Vec::new();
        if let Some(counters) = node.get("counters").and_then(Value::as_object) {
            for (k, v) in counters {
                extras.push(format!("{k}={}", v.as_u64().unwrap_or(0)));
            }
        }
        if let Some(alloc) = node.get("alloc") {
            if let (Some(a), Some(b), Some(p)) = (
                alloc.get("allocs").and_then(Value::as_u64),
                alloc.get("bytes").and_then(Value::as_u64),
                alloc.get("peak_bytes").and_then(Value::as_u64),
            ) {
                extras.push(format!("allocs={a} bytes={b} peak={p}"));
            }
        }
        let extras = if extras.is_empty() {
            String::new()
        } else {
            format!("  [{}]", extras.join(", "))
        };
        out.push_str(&format!(
            "{label:<34} {calls:>7} {total:>11.3} {selfms:>11.3}{extras}\n"
        ));
        if let Some(children) = node.get("children").and_then(Value::as_array) {
            for c in children {
                walk(out, c, depth + 1);
            }
        }
    }
    let mut out = format!(
        "{:<34} {:>7} {:>11} {:>11}\n",
        "phase", "calls", "total ms", "self ms"
    );
    if let Some(roots) = phases.as_array() {
        for r in roots {
            walk(&mut out, r, 0);
        }
    }
    out
}

/// `gossip profile`: build a schedule with the phase profiler installed
/// and report where the construction time went. The profiled window
/// covers the whole construction pipeline — spanning tree sweeps,
/// labeling, schedule generation, CSR flattening, structural validation —
/// and the report states how much of the wall time landed in named phases
/// (the unattributed remainder is printed explicitly). The kernel replay
/// that verifies gossip completion runs *outside* the window: it is
/// run-side simulation, not schedule construction. `--out FILE` writes
/// the PROF artifact (render later with `gossip stats`, aggregate with
/// `gossip dash`); `--flame FILE` writes collapsed stacks for flamegraph
/// tooling.
pub fn profile(args: &Args) -> Result<(), String> {
    // The graph can come positionally (`gossip profile fig4`) or via the
    // usual --graph / --family flags.
    let g = match args.positional.first() {
        Some(spec) => {
            if args.options.contains_key("graph") {
                return Err("give the graph positionally or via --graph, not both".into());
            }
            load_graph_spec(spec, args)?
        }
        None => load_graph(args)?,
    };
    let alg = parse_algorithm(args)?;
    let planner_mode = parse_planner(args)?;
    if planner_mode == Planner::Both {
        return Err(
            "--planner both is a `gossip plan` cross-check; profile one planner at a time".into(),
        );
    }
    if planner_mode == Planner::Fast && alg != Algorithm::ConcurrentUpDown {
        return Err("--planner fast implements concurrent-updown only".into());
    }
    let out_path = path_option(args, "out")?;
    let flame_path = path_option(args, "flame")?;
    let model = if alg == Algorithm::Telephone {
        CommModel::Telephone
    } else {
        CommModel::Multicast
    };

    let profiler = gossip_telemetry::profile::Profiler::begin();
    let t0 = std::time::Instant::now();
    let (radius, makespan, guarantee, flat, origins) = if planner_mode == Planner::Fast {
        let plan = GossipPlanner::new(&g)
            .map_err(|e| e.to_string())?
            .plan_fast()
            .map_err(|e| e.to_string())?;
        plan.schedule
            .validate(&g, model, plan.origin_of_message.len())
            .map_err(|e| e.to_string())?;
        (
            plan.radius,
            plan.makespan(),
            plan.guarantee(),
            plan.schedule,
            plan.origin_of_message,
        )
    } else {
        let plan = GossipPlanner::new(&g)
            .map_err(|e| e.to_string())?
            .algorithm(alg)
            .plan()
            .map_err(|e| e.to_string())?;
        let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
        flat.validate(&g, model, plan.origin_of_message.len())
            .map_err(|e| e.to_string())?;
        (
            plan.radius,
            plan.makespan(),
            plan.guarantee(),
            flat,
            plan.origin_of_message,
        )
    };
    let plan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let profile = profiler.finish();

    let mut kernel =
        gossip_model::SimKernel::with_origins(&g, model, &origins).map_err(|e| e.to_string())?;
    let outcome = kernel.run_prevalidated(&flat).map_err(|e| e.to_string())?;
    if !outcome.complete {
        return Err("schedule did not complete gossip (bug)".into());
    }

    let doc = profile_artifact(&g, alg, radius, makespan, plan_ms, &profile);
    println!(
        "network: n = {}, m = {}, radius r = {}",
        g.n(),
        g.m(),
        radius
    );
    println!(
        "algorithm: {}{} — makespan {} rounds (n + r = {})",
        alg.name(),
        if planner_mode == Planner::Fast {
            " (fast planner, CSR-direct)"
        } else {
            ""
        },
        makespan,
        guarantee
    );
    println!("construction: {plan_ms:.3} ms wall (tree + generate + flatten + validate)");
    print!("{}", render_profile_phases(&doc["phases"]));
    let attributed = doc
        .get("attributed_ms")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let pct = doc
        .get("attributed_pct")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let unattributed = doc
        .get("unattributed_ms")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    println!(
        "attribution: {attributed:.3} ms of {plan_ms:.3} ms in named phases ({pct:.1}%); {unattributed:.3} ms unattributed"
    );
    if profile.alloc_tracking() {
        println!(
            "allocation tracking: on — peak live {} bytes in the hottest phase",
            profile.peak_bytes()
        );
    } else {
        println!(
            "allocation tracking: off — build with `--features prof-alloc` to attribute heap traffic"
        );
    }
    if let Some(path) = &out_path {
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote profile to {path} — render with `gossip stats {path}`");
    }
    if let Some(path) = &flame_path {
        let flame = profile.collapsed_stacks();
        std::fs::write(path, &flame).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote {} collapsed stack line(s) to {path} — feed to flamegraph.pl or speedscope",
            flame.lines().count()
        );
    }
    Ok(())
}

/// `gossip recover`: run the plan under a fault plan with the self-healing
/// executor and report the recovery outcome. Errors (exit 1) when the epoch
/// budget ran out with recoverable pairs still missing, so scripts and CI
/// can gate on full recovery.
pub fn recover(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let alg = parse_algorithm(args)?;
    if alg == Algorithm::Telephone {
        return Err(
            "recover runs under the multicast model; --algorithm telephone is not supported".into(),
        );
    }
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .algorithm(alg);
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let faults_opt = parse_fault_plan(args, g.n())?;
    let faults = faults_opt.clone().unwrap_or_else(FaultPlan::none);
    let max_epochs = args.get_usize("max-epochs", DEFAULT_MAX_EPOCHS)?;
    let flight_path = flight_out_path(args)?;
    let flight = match &flight_path {
        Some(_) => {
            let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
            let header = flight_header(
                "resilient",
                &g,
                plan.radius,
                &flat,
                &faults_opt,
                &plan.origin_of_message,
            )?;
            Some(FlightRecorder::new(header))
        }
        None => None,
    };
    let rules = parse_alert_rules(args)?;
    let tee;
    let base: &dyn Recorder = match (&metrics, &flight) {
        (Some(m), Some(f)) => {
            tee = Tee::new(&m.recorder, f);
            &tee
        }
        (Some(m), None) => &m.recorder,
        (None, Some(f)) => f,
        (None, None) => &gossip_telemetry::NoopRecorder,
    };
    // The watchdog wraps whatever the run already records through, so
    // the same event stream feeds metrics, the flight capture, and the
    // streaming invariant monitors.
    let engine;
    let mut sink = None;
    let mut exec = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
        .max_epochs(max_epochs);
    exec = match rules {
        Some(r) => {
            engine = AlertEngine::new(base, r)
                .bound(plan.guarantee() as u64)
                .total_pairs((g.n() * plan.origin_of_message.len()) as u64)
                .max_epochs(max_epochs as u64);
            sink = Some(engine.sink());
            exec.recorder(&engine)
        }
        None => exec.recorder(base),
    };
    let report = exec.run().map_err(|e| e.to_string())?;

    out!(
        out,
        "network: n = {}, m = {}, radius r = {}; algorithm {}",
        g.n(),
        g.m(),
        plan.radius,
        alg.name()
    );
    out!(
        out,
        "fault plan: seed {}, loss rate {}, {} crash(es), {} outage(s)",
        faults.seed,
        faults.loss_rate,
        faults.crashes.len(),
        faults.outages.len()
    );
    out!(
        out,
        "{:>6} {:>6} {:>7} {:>10} {:>10} {:>6} {:>9}",
        "epoch",
        "start",
        "rounds",
        "attempted",
        "delivered",
        "lost",
        "residual"
    );
    for e in &report.epochs {
        out!(
            out,
            "{:>6} {:>6} {:>7} {:>10} {:>10} {:>6} {:>9}",
            if e.epoch == 0 {
                "base".to_string()
            } else {
                e.epoch.to_string()
            },
            e.start_round,
            e.rounds,
            e.attempted,
            e.delivered,
            e.lost,
            e.residual_after
        );
    }
    out!(
        out,
        "totals: {} rounds (baseline {}, overhead +{}), {} retransmissions, {} deliveries lost ({})",
        report.total_rounds,
        report.baseline_rounds,
        report.overhead_rounds(),
        report.retransmissions,
        report.lost_deliveries,
        loss_breakdown(&report.lost_log)
    );
    out!(out, "survivors: {} of {}", report.survivors, report.n);
    if !report.unrecoverable.is_empty() {
        out!(
            out,
            "unrecoverable: {} pair(s) — message extinct among survivors",
            report.unrecoverable.len()
        );
    }
    if report.recovered {
        out!(
            out,
            "recovered: every reachable (message, vertex) pair completed in {} epoch(s)",
            report.epochs.len()
        );
    }

    if let Some(path) = args.options.get("out") {
        if path == "true" {
            return Err("--out requires a file path".into());
        }
        let json = serde_json::to_string_pretty(&report.to_value()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(out, "wrote recovery report to {path}");
    }
    if let Some(path) = args.options.get("trace-out") {
        if path == "true" {
            return Err("--trace-out requires a file path".into());
        }
        let trace = report.chrome_trace();
        std::fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote Chrome trace ({} events) to {path} — one lane per repair epoch",
            trace.len()
        );
    }
    // The capture is written even when recovery fell short — that is
    // exactly when a post-mortem matters.
    if let (Some(path), Some(f)) = (&flight_path, &flight) {
        write_flight(path, f, out)?;
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    let fired = match &sink {
        Some(s) => alerts_epilogue(s, args, out)?,
        None => 0,
    };
    if report.recovered {
        alerts_fatal(args, fired)?;
        Ok(())
    } else {
        Err(format!(
            "recovery incomplete: {} recoverable pair(s) still missing after {} epoch(s) (raise --max-epochs)",
            report.unresolved.len(),
            max_epochs
        ))
    }
}

/// `gossip churn`: execute while a (scripted or generated) churn plan
/// mutates the topology mid-run, repairing the schedule incrementally.
/// Exits 1 when a recoverable pair was left undelivered.
pub fn churn(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    // The base plan is only consulted for the report header (radius,
    // baseline makespan) and the generator horizon; the executor plans
    // internally so its tree stays in sync with its repairs.
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let churn_plan = match path_option(args, "churn-plan")? {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let plan: ChurnPlan =
                serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            plan.validate(g.n()).map_err(|e| format!("{path}: {e}"))?;
            plan
        }
        None => {
            let rate = args.get_f64("churn-rate", 0.05)?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("--churn-rate {rate} out of range [0, 1]"));
            }
            let seed = args.get_u64("churn-seed", 0)?;
            // Aim events at the interior of the run: the last couple of
            // rounds are excluded so every event lands while entries are
            // still in flight.
            let horizon = plan.schedule.makespan().saturating_sub(2).max(1) as u32;
            gossip_model::ChurnPlan::generate(&g, rate, seed, horizon)
        }
    };
    if let Some(path) = path_option(args, "churn-out")? {
        let json = serde_json::to_string_pretty(&churn_plan).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(
            out,
            "wrote churn plan ({} event(s), seed {}) to {path}",
            churn_plan.events.len(),
            churn_plan.seed
        );
    }
    let max_epochs = args.get_usize("max-epochs", DEFAULT_MAX_EPOCHS)?;
    let flight_path = flight_out_path(args)?;
    let flight = match &flight_path {
        Some(_) => {
            let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
            let mut header = flight_header(
                "churn",
                &g,
                plan.radius,
                &flat,
                &None,
                &plan.origin_of_message,
            )?;
            // The fault-digest slot fingerprints the churn plan instead:
            // two churn captures with the same graph/schedule digests but
            // different topology scripts must not diff as "same inputs".
            let json = serde_json::to_string(&churn_plan).map_err(|e| e.to_string())?;
            let mut d = Digest::new();
            d.write_bytes(json.as_bytes());
            header.fault_digest = d.finish();
            Some(FlightRecorder::new(header))
        }
        None => None,
    };
    let rules = parse_alert_rules(args)?;
    let tee;
    let base: &dyn Recorder = match (&metrics, &flight) {
        (Some(m), Some(f)) => {
            tee = Tee::new(&m.recorder, f);
            &tee
        }
        (Some(m), None) => &m.recorder,
        (None, Some(f)) => f,
        (None, None) => &gossip_telemetry::NoopRecorder,
    };
    // Under churn the bound context is the *baseline* n + r: topology
    // events legitimately extend the run, so the churn-storm rule (not
    // the bound rule) is the signal a rule file usually tightens here.
    let engine;
    let mut sink = None;
    let mut exec = ChurnExecutor::new(&g, &churn_plan).max_epochs(max_epochs);
    exec = match rules {
        Some(r) => {
            engine = AlertEngine::new(base, r)
                .bound(plan.guarantee() as u64)
                .total_pairs((g.n() * plan.origin_of_message.len()) as u64)
                .max_epochs(max_epochs as u64);
            sink = Some(engine.sink());
            exec.recorder(&engine)
        }
        None => exec.recorder(base),
    };
    let report = exec.run().map_err(|e| e.to_string())?;

    out!(
        out,
        "network: n = {}, m = {}, radius r = {}; baseline schedule {} round(s)",
        g.n(),
        g.m(),
        plan.radius,
        report.baseline_rounds
    );
    out!(
        out,
        "churn plan: seed {}, {} event(s) ({} after flap expansion), last at round {}",
        churn_plan.seed,
        churn_plan.events.len(),
        report.events_applied,
        report.last_event_round
    );
    if !report.batches.is_empty() {
        out!(
            out,
            "{:>6} {:>7} {:>12} {:>12} {:>12} {:>9}",
            "round",
            "events",
            "invalidated",
            "repair",
            "replanned",
            "scratch"
        );
        for b in &report.batches {
            out!(
                out,
                "{:>6} {:>7} {:>12} {:>12} {:>12} {:>9}",
                b.round,
                b.events,
                b.invalidated_deliveries,
                b.decision.label(),
                b.repaired_entries,
                b.scratch_entries
            );
        }
    }
    out!(
        out,
        "repair: {} incremental, {} full replan(s); {} entr(ies) replanned vs {} from scratch{}",
        report.incremental_repairs,
        report.full_replans,
        report.repaired_entries,
        report.scratch_entries,
        if report.bound_fallback {
            format!(
                " (+{} from the bound-guard full plan)",
                report.fallback_entries
            )
        } else {
            String::new()
        }
    );
    out!(
        out,
        "totals: {} round(s), {} completion epoch(s), {} retransmission(s), {} delivery(ies) invalidated",
        report.total_rounds,
        report.completion_epochs,
        report.retransmissions,
        report.deliveries_invalidated
    );
    match (report.final_radius, report.final_bound) {
        (Some(r), Some(bound)) => out!(
            out,
            "final graph: {} node(s) present, radius {r}; {} round(s) after the last event vs bound n + r = {bound} — {}",
            report.final_present,
            report.rounds_after_last_event,
            if report.within_final_bound {
                "WITHIN BOUND"
            } else {
                "OVER BOUND"
            }
        ),
        _ => out!(
            out,
            "final graph: {} node(s) present, disconnected — the n + r bound is undefined",
            report.final_present
        ),
    }
    if !report.unrecoverable.is_empty() {
        out!(
            out,
            "unrecoverable: {} pair(s) — message extinct among present nodes or cut off",
            report.unrecoverable.len()
        );
    }
    if report.recovered {
        out!(
            out,
            "recovered: every reachable (message, vertex) pair completed"
        );
    }

    if let Some(path) = path_option(args, "out")? {
        let json = serde_json::to_string_pretty(&report.to_value()).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(out, "wrote churn report to {path}");
    }
    // Like recover: the capture is written even on failure — that is
    // exactly when a post-mortem matters.
    if let (Some(path), Some(f)) = (&flight_path, &flight) {
        write_flight(path, f, out)?;
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    let fired = match &sink {
        Some(s) => alerts_epilogue(s, args, out)?,
        None => 0,
    };
    if report.recovered {
        alerts_fatal(args, fired)?;
        Ok(())
    } else {
        Err(format!(
            "churn recovery incomplete: a recoverable pair is still missing after {max_epochs} completion epoch(s) (raise --max-epochs)"
        ))
    }
}

/// `gossip trace`: print one vertex's schedule in the paper's table format.
pub fn trace(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let v = args.get_usize("vertex", plan.tree.root())?;
    if v >= g.n() {
        return Err(format!("vertex {v} out of range (n = {})", g.n()));
    }
    println!("spanning tree (vertex  [DFS label, subtree range, level]):");
    print!("{}", gossip_graph::render_tree(&plan.tree));
    println!(
        "\nvertex {v}: label i = {}, level k = {}, subtree range {:?}",
        plan.tree.label(v),
        plan.tree.level(v),
        plan.tree.subtree_range(v)
    );
    println!("{}", vertex_trace(&plan.schedule, &plan.tree, v).render());
    Ok(())
}

/// `gossip bounds`: lower bounds and what the pipeline achieves.
pub fn bounds(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    println!("n - 1 trivial bound:       {}", g.n().saturating_sub(1));
    println!(
        "cut-vertex bound:          {}",
        gossip_core::cut_vertex_lower_bound(&g)
    );
    println!("best lower bound:          {}", gossip_lower_bound(&g));
    println!("achieved (n + r):          {}", plan.makespan());
    Ok(())
}

/// `gossip exact`: exact optimum for tiny networks.
pub fn exact(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    if g.n() > 8 {
        return Err(format!("exact search supports n <= 8, got {}", g.n()));
    }
    let model = match args.get_or("model", "multicast") {
        "multicast" => CommModel::Multicast,
        "telephone" => CommModel::Telephone,
        other => return Err(format!("unknown model {other:?}")),
    };
    let budget = args.get_u64("budget", 50_000_000)?;
    match optimal_gossip_time(&g, model, 2 * g.n() + 4, budget) {
        ExactResult::Optimal(t) => {
            println!("optimal {} gossip time: {t} rounds", model.name());
            Ok(())
        }
        other => Err(format!("search did not converge: {other:?}")),
    }
}

/// `gossip sweep`: the Theorem 1 table across families.
pub fn sweep(args: &Args) -> Result<(), String> {
    let sizes: Vec<usize> = args
        .get_or("sizes", "16,32,64")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad size {s:?}")))
        .collect::<Result<_, _>>()?;
    let seed = args.get_u64("seed", 0)?;
    println!(
        "{:>14} {:>6} {:>6} {:>5} {:>9} {:>7} {:>6}",
        "family", "n", "m", "r", "makespan", "n + r", "ok"
    );
    for &family in Family::all() {
        for &target in &sizes {
            let g = family.instance(target, seed);
            let plan = GossipPlanner::new(&g)
                .map_err(|e| e.to_string())?
                .plan()
                .map_err(|e| e.to_string())?;
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message)
                .map_err(|e| e.to_string())?;
            println!(
                "{:>14} {:>6} {:>6} {:>5} {:>9} {:>7} {:>6}",
                family.name(),
                g.n(),
                g.m(),
                plan.radius,
                plan.makespan(),
                plan.guarantee(),
                if o.complete { "yes" } else { "NO" }
            );
        }
    }
    Ok(())
}

/// `gossip analyze`: latency/redundancy/link-load profile of the plan.
pub fn analyze(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        let mut sim = gossip_model::Simulator::with_origins(
            &g,
            CommModel::Multicast,
            &plan.origin_of_message,
        )
        .map_err(|e| e.to_string())?;
        sim.run_recorded(&plan.schedule, &m.recorder)
            .map_err(|e| e.to_string())?;
    }
    let a = gossip_model::analyze_schedule(&g, &plan.schedule, &plan.origin_of_message)
        .map_err(|e| e.to_string())?;
    out!(out, "makespan:             {}", plan.makespan());
    out!(
        out,
        "last message complete: {}",
        a.last_completion()
            .map_or("never".to_string(), |t| t.to_string())
    );
    out!(
        out,
        "deliveries:           {} ({} redundant, {:.1}%)",
        a.total_deliveries,
        a.redundant_deliveries,
        100.0 * a.redundancy()
    );
    out!(out, "link imbalance:       {:.2}", a.link_imbalance());
    out!(out, "busiest links:");
    for &(u, v, uses) in a.link_loads.iter().take(5) {
        out!(out, "  {u} -- {v}: {uses} deliveries");
    }
    let curve = gossip_model::knowledge_curve(&g, &plan.schedule, &plan.origin_of_message)
        .map_err(|e| e.to_string())?;
    out!(
        out,
        "knowledge curve:      |{}|",
        gossip_model::render_sparkline(&curve)
    );
    if args.flag("gantt") {
        out!(
            out,
            "\nper-processor timeline (S = send, R = receive, B = both):"
        );
        for line in gossip_model::render_gantt(&plan.schedule).lines() {
            out!(out, "{line}");
        }
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip line`: the optimal n + r - 1 line schedule (paper §4 remark).
pub fn line(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 5)?;
    if !(2..=gossip_core::MAX_LINE_N).contains(&n) {
        return Err(format!(
            "line schedules are available for 2 <= n <= {}",
            gossip_core::MAX_LINE_N
        ));
    }
    let s = gossip_core::line_gossip_schedule(n);
    let g = gossip_workloads::path(n);
    let o = gossip_model::simulate_gossip(&g, &s, &gossip_model::identity_origins(n))
        .map_err(|e| e.to_string())?;
    if !o.complete {
        return Err("line schedule incomplete (bug)".into());
    }
    println!(
        "path of {n}: {} rounds = n + r - 1 (generic algorithm: {})",
        s.makespan(),
        n + n / 2
    );
    for (t, round) in s.rounds.iter().enumerate() {
        let txs: Vec<String> = round
            .transmissions
            .iter()
            .map(|x| format!("{}--m{}-->{:?}", x.from, x.msg, x.to))
            .collect();
        println!("  t{t}: {}", txs.join("  "));
    }
    Ok(())
}

/// `gossip pipeline`: minimal repeated-gossip period on the plan's tree.
pub fn pipeline(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let batches = args.get_usize("batches", 4)?.max(1);
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let period = gossip_core::min_pipeline_period(&plan.tree, batches);
    let pipelined = match &metrics {
        Some(m) => gossip_core::pipelined_gossip_recorded(&plan.tree, batches, period, &m.recorder),
        None => gossip_core::pipelined_gossip(&plan.tree, batches, period),
    }
    .ok_or("period search failed (bug)")?;
    out!(out, "single gossip:   {} rounds (n + r)", plan.makespan());
    out!(out, "minimal period:  {period} rounds between batch starts");
    out!(
        out,
        "{batches} batches:       {} rounds total ({:.1} amortized, {:.2}x speedup)",
        pipelined.schedule.makespan(),
        pipelined.amortized_rounds(),
        plan.makespan() as f64 / pipelined.amortized_rounds()
    );
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip stats`: human summary of a metrics file written via `--metrics`,
/// a recovery report, or a `.gfr` flight record (recognized by content,
/// not extension). The path `-` reads the artifact from stdin, so
/// `--metrics -` output can be piped straight in.
pub fn stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gossip stats METRICS.json|RUN.gfr  (or `-` for stdin)")?;
    let bytes = if path == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("{path}: {e}"))?
    };
    if FlightLog::sniff(&bytes) {
        let log = FlightLog::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
        let report = gossip_obsd::inspect(&log, None)?;
        print!("{}", gossip_obsd::postmortem::render_inspect(&report));
        let losses = gossip_obsd::postmortem::loss_breakdown(&log);
        if !losses.is_empty() {
            println!("losses by cause: {losses}");
        }
        println!("(full time-travel view: `gossip inspect {path} --round R`)");
        return Ok(());
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| format!("{path}: neither a flight record nor UTF-8 JSON"))?;
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("{path}: {e}"))?;
    check_schema_version(&doc).map_err(|e| format!("{path}: {e}"))?;
    // `gossip recover --out` reports are also schema-versioned artifacts;
    // summarize them with their own (epoch table) rendering.
    if doc.get("kind").and_then(Value::as_str) == Some("recovery") {
        return stats_recovery(&doc);
    }
    // `gossip churn --out` reports render as their per-batch repair table.
    if doc.get("kind").and_then(Value::as_str) == Some("churn") {
        return stats_churn(&doc);
    }
    // PROF artifacts (`gossip profile --out`, `gossip plan --profile-out`)
    // render as an indented phase table.
    if doc.get("kind").and_then(Value::as_str) == Some("profile") {
        return stats_profile(&doc);
    }
    // Watchdog artifacts (`--alerts-out`) render as an alert timeline.
    if doc.get("kind").and_then(Value::as_str) == Some("alerts") {
        return stats_alerts(&doc);
    }
    let snapshot = &doc["snapshot"];

    let section = |title: &str, key: &str, fmt: &dyn Fn(&Value) -> String| {
        if let Some(entries) = snapshot[key].as_object() {
            if !entries.is_empty() {
                println!("{title}:");
                for (name, v) in entries {
                    println!("  {name:<32} {}", fmt(v));
                }
            }
        }
    };
    let scalar = |v: &Value| {
        v.as_u64()
            .map(|u| u.to_string())
            .or_else(|| v.as_f64().map(|f| format!("{f:.3}")))
            .unwrap_or_else(|| "?".into())
    };
    let summary = |v: &Value| {
        format!(
            "n={} total={} p50={} p99={} max={}",
            scalar(&v["count"]),
            scalar(&v["total"]),
            scalar(&v["p50"]),
            scalar(&v["p99"]),
            scalar(&v["max"])
        )
    };
    section("spans (ms)", "spans", &summary);
    section("counters", "counters", &scalar);
    section("gauges", "gauges", &scalar);
    section("histograms", "histograms", &summary);

    let events = doc["events"].as_array().cloned().unwrap_or_default();
    let rounds: Vec<&Value> = events
        .iter()
        .filter(|e| e["event"].as_str() == Some("round"))
        .collect();
    println!(
        "events: {} total, {} per-round probes",
        events.len(),
        rounds.len()
    );
    if !rounds.is_empty() {
        let curve: Vec<f64> = rounds
            .iter()
            .filter_map(|e| e["coverage"].as_f64())
            .collect();
        println!(
            "coverage curve: |{}|",
            gossip_model::render_sparkline(&curve)
        );
        let last = rounds.last().unwrap();
        println!(
            "final round {}: coverage {}, {} idle receivers",
            scalar(&last["round"]),
            scalar(&last["coverage"]),
            scalar(&last["idle_receivers"])
        );
    }
    Ok(())
}

/// Renders a PROF artifact (`kind: "profile"`) for `gossip stats`: the
/// header scalars plus the indented phase table `gossip profile` prints.
fn stats_profile(doc: &Value) -> Result<(), String> {
    let int = |k: &str| {
        doc.get(k)
            .and_then(Value::as_u64)
            .map(|u| u.to_string())
            .unwrap_or_else(|| "?".into())
    };
    let ms = |k: &str| doc.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    println!(
        "planner profile: {} on n = {}, m = {}, radius {} (makespan {})",
        doc.get("algorithm").and_then(Value::as_str).unwrap_or("?"),
        int("n"),
        int("m"),
        int("radius"),
        int("makespan")
    );
    println!(
        "construction {:.3} ms — attributed {:.3} ms ({:.1}%), unattributed {:.3} ms",
        ms("plan_ms"),
        ms("attributed_ms"),
        ms("attributed_pct"),
        ms("unattributed_ms")
    );
    print!("{}", render_profile_phases(&doc["phases"]));
    if doc.get("alloc_tracking").and_then(Value::as_bool) == Some(true) {
        println!("allocation stats recorded by the prof-alloc counting allocator (process-global attribution)");
    }
    Ok(())
}

/// Renders a watchdog artifact (`kind: "alerts"`, from `--alerts-out`)
/// for `gossip stats`: the alert timeline in firing order, mirroring
/// the epilogue the monitored command printed.
fn stats_alerts(doc: &Value) -> Result<(), String> {
    let alerts = doc["alerts"].as_array().cloned().unwrap_or_default();
    println!(
        "alerts artifact: {} alert(s){}",
        alerts.len(),
        if doc["critical"].as_bool() == Some(true) {
            " (critical)"
        } else {
            ""
        }
    );
    for a in &alerts {
        println!(
            "  round {:>3}: [{}] {} — {} (value {:.2}, threshold {:.2})",
            a["round"].as_u64().unwrap_or(0),
            a["severity"].as_str().unwrap_or("?"),
            a["rule"].as_str().unwrap_or("?"),
            a["message"].as_str().unwrap_or(""),
            a["value"].as_f64().unwrap_or(0.0),
            a["threshold"].as_f64().unwrap_or(0.0)
        );
    }
    if alerts.is_empty() {
        println!("  (clean run — every monitored invariant held)");
    }
    Ok(())
}

/// Renders a `ChurnReport` artifact (`kind: "churn"`) for `gossip stats`:
/// the per-batch repair table plus the final-bound verdict, mirroring
/// what `gossip churn` printed when it wrote the file.
fn stats_churn(doc: &Value) -> Result<(), String> {
    let int = |v: &Value| {
        v.as_u64()
            .map(|u| u.to_string())
            .unwrap_or_else(|| "?".into())
    };
    println!(
        "churn report: n = {}, {} event(s) applied, baseline {} rounds",
        int(&doc["n"]),
        int(&doc["events_applied"]),
        int(&doc["baseline_rounds"])
    );
    let batches = doc["batches"].as_array().cloned().unwrap_or_default();
    if !batches.is_empty() {
        println!(
            "{:>6} {:>7} {:>12} {:>12} {:>12} {:>9}",
            "round", "events", "invalidated", "repair", "replanned", "scratch"
        );
        for b in &batches {
            println!(
                "{:>6} {:>7} {:>12} {:>12} {:>12} {:>9}",
                int(&b["round"]),
                int(&b["events"]),
                int(&b["invalidated_deliveries"]),
                b["decision"].as_str().unwrap_or("?"),
                int(&b["repaired_entries"]),
                int(&b["scratch_entries"])
            );
        }
    }
    println!(
        "repair: {} incremental, {} full replan(s); {} entr(ies) replanned vs {} from scratch",
        int(&doc["incremental_repairs"]),
        int(&doc["full_replans"]),
        int(&doc["repaired_entries"]),
        int(&doc["scratch_entries"])
    );
    println!(
        "totals: {} round(s), {} completion epoch(s), {} delivery(ies) invalidated",
        int(&doc["total_rounds"]),
        int(&doc["completion_epochs"]),
        int(&doc["deliveries_invalidated"])
    );
    let unrecoverable = doc["unrecoverable"].as_array().map_or(0, Vec::len);
    let verdict = match (
        doc["recovered"].as_bool(),
        doc["within_final_bound"].as_bool(),
    ) {
        (Some(true), Some(true)) => "recovered WITHIN the final n + r bound",
        (Some(true), _) => "recovered (bound undefined or exceeded)",
        _ => "INCOMPLETE",
    };
    println!(
        "verdict: {verdict}; {} round(s) after the last event vs bound {}; {unrecoverable} unrecoverable pair(s)",
        int(&doc["rounds_after_last_event"]),
        int(&doc["final_bound"]),
    );
    Ok(())
}

/// Renders a `RecoveryReport` artifact (`kind: "recovery"`) for `gossip
/// stats`: the per-epoch table plus a residual summary, mirroring what
/// `gossip recover` printed when it wrote the file.
fn stats_recovery(doc: &Value) -> Result<(), String> {
    let int = |v: &Value| {
        v.as_u64()
            .map(|u| u.to_string())
            .unwrap_or_else(|| "?".into())
    };
    println!(
        "recovery report: n = {}, survivors {}, baseline {} rounds",
        int(&doc["n"]),
        int(&doc["survivors"]),
        int(&doc["baseline_rounds"])
    );
    let epochs = doc["epochs"].as_array().cloned().unwrap_or_default();
    println!(
        "{:>6} {:>6} {:>7} {:>10} {:>10} {:>6} {:>9}",
        "epoch", "start", "rounds", "attempted", "delivered", "lost", "residual"
    );
    for e in &epochs {
        println!(
            "{:>6} {:>6} {:>7} {:>10} {:>10} {:>6} {:>9}",
            if e["epoch"].as_u64() == Some(0) {
                "base".to_string()
            } else {
                int(&e["epoch"])
            },
            int(&e["start_round"]),
            int(&e["rounds"]),
            int(&e["attempted"]),
            int(&e["delivered"]),
            int(&e["lost"]),
            int(&e["residual_after"])
        );
    }
    println!(
        "totals: {} rounds (overhead +{}), {} retransmissions, {} deliveries lost",
        int(&doc["total_rounds"]),
        int(&doc["overhead_rounds"]),
        int(&doc["retransmissions"]),
        int(&doc["lost_deliveries"])
    );
    let residual = epochs
        .last()
        .map(|e| int(&e["residual_after"]))
        .unwrap_or_else(|| "?".into());
    let unrecoverable = doc["unrecoverable"].as_array().map_or(0, Vec::len);
    println!(
        "residual: {residual} pair(s) after {} epoch(s), {unrecoverable} unrecoverable — {}",
        epochs.len(),
        if doc["recovered"].as_bool() == Some(true) {
            "recovered"
        } else {
            "INCOMPLETE"
        }
    );
    Ok(())
}

/// `gossip serve`: run the self-healing executor with the live HTTP
/// observability server attached — `/metrics` (Prometheus), `/healthz`,
/// and `/events` (NDJSON) stay scrapeable for the whole run. The run's
/// telemetry lands in a [`LiveRegistry`]; `--round-delay-ms` stretches the
/// round cadence (via [`Paced`]) so scrapers can watch progress, and
/// `--linger-ms` keeps the server up after completion for a final scrape.
pub fn serve(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let alg = parse_algorithm(args)?;
    if alg == Algorithm::Telephone {
        return Err(
            "serve runs under the multicast model; --algorithm telephone is not supported".into(),
        );
    }
    let listen = args.get_or("listen", "127.0.0.1:9464");
    let delay = std::time::Duration::from_millis(args.get_u64("round-delay-ms", 0)?);
    let linger = std::time::Duration::from_millis(args.get_u64("linger-ms", 0)?);
    let faults_opt = parse_fault_plan(args, g.n())?;
    let faults = faults_opt.clone().unwrap_or_else(FaultPlan::none);
    let max_epochs = args.get_usize("max-epochs", DEFAULT_MAX_EPOCHS)?;
    let flight_path = flight_out_path(args)?;

    let registry = Arc::new(LiveRegistry::new());
    let server =
        ObsdServer::start(listen, Arc::clone(&registry)).map_err(|e| format!("{listen}: {e}"))?;
    let addr = server.addr();
    if let Some(path) = args.options.get("addr-file") {
        if path == "true" {
            return Err("--addr-file requires a file path".into());
        }
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    println!("serving on http://{addr} — endpoints: /metrics /healthz /events /alerts");
    let health = server.health();
    let paced = Paced::new(&*registry, delay);
    let rules = parse_alert_rules(args)?;

    health.set_phase("planning");
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .algorithm(alg)
        .recorder(&paced)
        .plan()
        .map_err(|e| e.to_string())?;
    println!(
        "planned: n = {}, r = {}, makespan {} (n + r = {})",
        g.n(),
        plan.radius,
        plan.makespan(),
        plan.guarantee()
    );

    health.set_phase("executing");
    // With --flight-out the executor records through Paced(Tee(live
    // registry, flight)) — the capture sees the same event stream as the
    // live endpoints, and pacing delays neither one relative to the other.
    let flight = match &flight_path {
        Some(_) => {
            let flat = gossip_model::FlatSchedule::from_schedule(&plan.schedule);
            let header = flight_header(
                "resilient",
                &g,
                plan.radius,
                &flat,
                &faults_opt,
                &plan.origin_of_message,
            )?;
            Some(FlightRecorder::new(header))
        }
        None => None,
    };
    let tee;
    let base: &dyn Recorder = match &flight {
        Some(f) => {
            tee = Tee::new(&*registry, f);
            &tee
        }
        None => &*registry,
    };
    // With --alerts the chain is Paced(AlertEngine(Tee(registry,
    // flight))): pacing sits outermost so the watchdog's wall-clock
    // stall budget observes the same cadence the scrapers do, and the
    // engine forwards everything so the live endpoints and the capture
    // see an unchanged stream (plus the fired-alert events).
    let engine;
    let mut sink = None;
    let monitored: &dyn Recorder = match rules {
        Some(r) => {
            engine = AlertEngine::new(base, r)
                .bound(plan.guarantee() as u64)
                .total_pairs((g.n() * plan.origin_of_message.len()) as u64)
                .max_epochs(max_epochs as u64);
            let s = engine.sink();
            server.set_alerts(Arc::clone(&s));
            sink = Some(s);
            &engine
        }
        None => base,
    };
    let paced_exec = Paced::new(monitored, delay);
    let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
        .max_epochs(max_epochs)
        .recorder(&paced_exec)
        .run()
        .map_err(|e| e.to_string())?;
    if let (Some(path), Some(f)) = (&flight_path, &flight) {
        write_flight(path, f, Out { to_stderr: false })?;
    }
    health.set_phase("complete");
    health.set_done();
    println!(
        "run complete: {} rounds over {} epoch(s), {} retransmissions, recovered: {}",
        report.total_rounds,
        report.epochs.len(),
        report.retransmissions,
        if report.recovered { "yes" } else { "NO" }
    );
    // The epilogue disarms the watchdog's wall-clock stall poll *before*
    // the linger window, so a long linger never fires a phantom stall.
    let fired = match &sink {
        Some(s) => alerts_epilogue(s, args, Out { to_stderr: false })?,
        None => 0,
    };
    if !linger.is_zero() {
        println!("lingering {} ms for final scrapes", linger.as_millis());
        std::thread::sleep(linger);
    }
    server.stop();
    if report.recovered {
        alerts_fatal(args, fired)?;
        Ok(())
    } else {
        Err(format!(
            "recovery incomplete: {} recoverable pair(s) still missing after {} epoch(s) (raise --max-epochs)",
            report.unresolved.len(),
            max_epochs
        ))
    }
}

/// `gossip dash`: aggregate schema-versioned run artifacts (metrics
/// documents, `BENCH_*` files, recovery reports, `.gfr` flight records)
/// into one self-contained HTML dashboard. Directory arguments ingest
/// every `*.json` and `*.gfr` inside (unrecognized files are skipped with
/// a warning); file arguments must parse.
pub fn dash(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("usage: gossip dash ARTIFACT.json|DIR [MORE...] [--out report.html]".into());
    }
    let mut history = History::new();
    for arg in &args.positional {
        let p = std::path::Path::new(arg);
        if p.is_dir() {
            let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{arg}: {e}"))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|q| q.extension().is_some_and(|x| x == "json" || x == "gfr"))
                .collect();
            entries.sort();
            for q in entries {
                match history.ingest_file(&q) {
                    Ok(kind) => println!("ingested {} ({})", q.display(), kind.label()),
                    Err(e) => eprintln!("skipping {e}"),
                }
            }
        } else {
            let kind = history.ingest_file(p)?;
            println!("ingested {arg} ({})", kind.label());
        }
    }
    if history.runs.is_empty() {
        return Err("no artifacts ingested".into());
    }
    let html = render_dashboard(&history);
    let out_path = args.get_or("out", "report.html");
    std::fs::write(out_path, &html).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "wrote dashboard ({} run{}, {} bytes) to {out_path}",
        history.runs.len(),
        if history.runs.len() == 1 { "" } else { "s" },
        html.len()
    );
    // Cross-run regression detection always reports; --check turns a
    // non-empty report into a nonzero exit so nightly jobs can gate on
    // it (the dashboard is still written first — that is the artifact
    // you want when the gate trips).
    let regressions = history.regressions();
    for r in &regressions {
        println!(
            "regression: [{}] {} — {} at {} vs baseline {} ({:+.1}%, robust z {})",
            r.group,
            r.metric,
            r.run,
            r.value,
            r.baseline,
            r.delta_pct,
            if r.z.is_finite() {
                format!("{:.1}", r.z)
            } else {
                "inf".to_string()
            }
        );
    }
    if args.flag("check") {
        if regressions.is_empty() {
            println!("check: no cross-run regressions detected");
        } else {
            return Err(format!(
                "{} cross-run regression(s) detected",
                regressions.len()
            ));
        }
    }
    Ok(())
}

/// `gossip inspect`: time-travel reconstruction of a `.gfr` flight
/// capture — hold-sets and coverage after any `--round` (default: final
/// state), plus the anomaly pass (stragglers, utilization dips, `n + r`
/// violations).
pub fn inspect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gossip inspect RUN.gfr [--round R]  (or `-` for stdin)")?;
    let log = read_flight(path)?;
    let round = match args.options.get("round") {
        Some(_) => Some(args.get_usize("round", 0)?),
        None => None,
    };
    let report = gossip_obsd::inspect(&log, round)?;
    print!("{}", gossip_obsd::postmortem::render_inspect(&report));
    let losses = gossip_obsd::postmortem::loss_breakdown(&log);
    if !losses.is_empty() {
        println!("losses by cause: {losses}");
    }
    let anomalies = gossip_obsd::anomalies(&log)?;
    print!("{}", gossip_obsd::postmortem::render_anomalies(&anomalies));
    Ok(())
}

/// `gossip diff`: align two `.gfr` captures and report the first
/// divergent round plus per-pair delivery-time deltas. Exits 1 unless the
/// runs are identical, so scripts and CI can gate on determinism.
pub fn diff(args: &Args) -> Result<(), String> {
    let [a, b] = args.positional.as_slice() else {
        return Err("usage: gossip diff A.gfr B.gfr  (one side may be `-` for stdin)".into());
    };
    if a == "-" && b == "-" {
        return Err("only one side of a diff can read from stdin".into());
    }
    let (log_a, log_b) = (read_flight(a)?, read_flight(b)?);
    let report = gossip_obsd::diff(&log_a, &log_b)?;
    print!("{}", gossip_obsd::postmortem::render_diff(&report));
    if report.identical {
        Ok(())
    } else if let Some(t) = report.first_divergent_round {
        Err(format!("captures diverge at round {t}"))
    } else if !report.comparable {
        Err("captures are not comparable (different n or n_msgs)".into())
    } else {
        Err(format!(
            "captures differ in length ({} vs {} round(s))",
            report.rounds.0, report.rounds.1
        ))
    }
}

/// `gossip energy`: sensor-field rounds + radio energy, multicast vs
/// telephone.
pub fn energy(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 30)?;
    let range: f64 = args
        .get_or("range", "0.22")
        .parse()
        .map_err(|_| "--range expects a number".to_string())?;
    let seed = args.get_u64("seed", 1)?;
    let (g, pts, used) = gossip_workloads::unit_disk_connected(n, range, seed);
    let planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    let mc = planner.clone().plan().map_err(|e| e.to_string())?;
    let tel = planner
        .clone()
        .algorithm(Algorithm::Telephone)
        .plan()
        .map_err(|e| e.to_string())?;
    let e_mc = gossip_workloads::schedule_energy(&mc.schedule, &pts, 2.0);
    let e_tel = gossip_workloads::schedule_energy(&tel.schedule, &pts, 2.0);
    println!(
        "sensor field: {n} nodes, radio range {used:.2}, {} links",
        g.m()
    );
    println!("multicast: {:>5} rounds, energy {e_mc:.2}", mc.makespan());
    println!("telephone: {:>5} rounds, energy {e_tel:.2}", tel.makespan());
    println!(
        "multicast saves {:.1}% energy and {:.1}% rounds",
        100.0 * (1.0 - e_mc / e_tel),
        100.0 * (1.0 - mc.makespan() as f64 / tel.makespan() as f64)
    );
    Ok(())
}

/// `gossip provenance`: run the plan through the provenance-tracing
/// simulator and report the causal structure — per-message critical paths
/// against the `n + r` bound, first-delivery DAG size, and the per-vertex
/// slack distribution (summarized through a telemetry histogram).
pub fn provenance(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let alg = parse_algorithm(args)?;
    let metrics = open_metrics(args)?;
    let out = Out::for_metrics(&metrics);
    let mut planner = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .algorithm(alg);
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let model = if alg == Algorithm::Telephone {
        CommModel::Telephone
    } else {
        CommModel::Multicast
    };
    let (outcome, tr) = trace_gossip(&g, &plan.schedule, &plan.origin_of_message, model)
        .map_err(|e| e.to_string())?;
    if !outcome.complete {
        return Err("schedule did not complete gossip (bug)".into());
    }
    // The n + r guarantee only binds the paper's algorithm; other
    // baselines get their paths reported without a bound.
    let bound = (alg == Algorithm::ConcurrentUpDown).then(|| plan.guarantee());

    out!(
        out,
        "network: n = {}, r = {}; algorithm {}; makespan {}",
        g.n(),
        plan.radius,
        alg.name(),
        tr.makespan()
    );
    out!(
        out,
        "first-delivery DAG: {} edges (complete gossip needs n(n-1) = {})",
        tr.edge_count(),
        g.n() * (g.n().saturating_sub(1))
    );
    let (crit_msg, crit_rounds) = tr.critical_message();
    match bound {
        Some(b) => out!(
            out,
            "critical path: message {crit_msg} took {crit_rounds} rounds (bound n + r = {b}, slack {})",
            b.saturating_sub(crit_rounds)
        ),
        None => out!(
            out,
            "critical path: message {crit_msg} took {crit_rounds} rounds"
        ),
    }
    let render_path = |msg: usize| {
        tr.critical_path(msg)
            .iter()
            .map(|s| format!("{}@{}", s.vertex, s.round))
            .collect::<Vec<_>>()
            .join(" -> ")
    };
    out!(out, "  {}", render_path(crit_msg));
    if let Some(msg) = args.options.get("message") {
        let msg: usize = msg
            .parse()
            .map_err(|_| format!("--message expects a number, got {msg:?}"))?;
        if msg >= tr.n_msgs() {
            return Err(format!("message {msg} out of range ({})", tr.n_msgs()));
        }
        out!(
            out,
            "message {msg}: latency {} rounds\n  {}",
            tr.message_latency(msg),
            render_path(msg)
        );
    }

    // Slack histogram: how many rounds before the reference bound each
    // vertex became fully informed. Summarized by gossip-telemetry so the
    // numbers match what `--metrics` records.
    let slack_bound = bound.unwrap_or(tr.makespan());
    let local = MetricsRecorder::new();
    let hist: &MetricsRecorder = metrics.as_ref().map(|m| &m.recorder).unwrap_or(&local);
    for s in tr.slack_against(slack_bound) {
        hist.observe("provenance/vertex_slack", s as f64);
    }
    let snap = hist.snapshot();
    let h = &snap["histograms"]["provenance/vertex_slack"];
    out!(
        out,
        "vertex slack vs {} (rounds spare): min {} p50 {} p90 {} max {}",
        match bound {
            Some(_) => "n + r".to_string(),
            None => format!("makespan {}", tr.makespan()),
        },
        h["min"].as_f64().unwrap_or(0.0),
        h["p50"].as_f64().unwrap_or(0.0),
        h["p90"].as_f64().unwrap_or(0.0),
        h["max"].as_f64().unwrap_or(0.0)
    );
    let util = tr.round_utilization();
    let busiest = util
        .iter()
        .max_by(|a, b| {
            a.receiver_utilization
                .partial_cmp(&b.receiver_utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied();
    if let Some(b) = busiest {
        out!(
            out,
            "busiest round: t{} with {} transmissions, {} deliveries ({:.0}% of receivers)",
            b.round,
            b.transmissions,
            b.deliveries,
            100.0 * b.receiver_utilization
        );
    }

    if let Some(path) = args.options.get("out") {
        if path == "true" {
            return Err("--out requires a file path".into());
        }
        let doc = tr.to_value(bound);
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        out!(out, "wrote provenance artifact to {path}");
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip bench-diff OLD.json NEW.json`: the perf gate. Compares two
/// `BENCH_*` artifacts and exits nonzero when the new one regressed.
pub fn bench_diff(args: &Args) -> Result<(), String> {
    let [old_path, new_path] = match args.positional.as_slice() {
        [a, b] => [a, b],
        _ => return Err("usage: gossip bench-diff OLD.json NEW.json".into()),
    };
    let read = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    let threshold_pct: f64 = args
        .get_or("threshold", "15")
        .parse()
        .map_err(|_| "--threshold expects a percentage".to_string())?;
    let wall_factor: f64 = args
        .get_or("wall-factor", "2")
        .parse()
        .map_err(|_| "--wall-factor expects a number".to_string())?;
    let cfg = DiffConfig {
        threshold_pct,
        wall_factor,
    };
    let report = diff_bench(&read(old_path)?, &read(new_path)?, &cfg)?;
    if args.flag("json") {
        // Machine-readable gate result: per-field verdicts with the
        // thresholds each value was judged against. Exit code unchanged.
        let json = serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        print!("{}", report.render());
    }
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} regression(s) vs {old_path} (threshold {threshold_pct}%, wall factor {wall_factor}x)",
            report.regressions.len()
        ))
    }
}

/// `gossip compare`: all algorithms and models on one network.
pub fn compare(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    println!("network: n = {}, m = {}", g.n(), g.m());
    println!("{:<22} {:>9} {:>9}", "algorithm", "makespan", "model");
    for alg in [
        Algorithm::ConcurrentUpDown,
        Algorithm::Simple,
        Algorithm::UpDown,
        Algorithm::Telephone,
    ] {
        let plan = planner
            .clone()
            .algorithm(alg)
            .plan()
            .map_err(|e| e.to_string())?;
        let model = if alg == Algorithm::Telephone {
            "telephone"
        } else {
            "multicast"
        };
        println!("{:<22} {:>9} {:>9}", alg.name(), plan.makespan(), model);
    }
    let bm = gossip_core::broadcast_model_gossip(&g);
    println!(
        "{:<22} {:>9} {:>9}",
        "broadcast-greedy",
        bm.makespan(),
        "broadcast"
    );
    if let Some(ham) = gossip_core::ring_gossip_schedule(&g) {
        println!(
            "{:<22} {:>9} {:>9}",
            "hamiltonian-circuit",
            ham.makespan(),
            "telephone"
        );
    }
    println!(
        "{:<22} {:>9}",
        "lower bound",
        gossip_core::gossip_lower_bound(&g)
    );
    Ok(())
}
