//! Subcommand implementations for the `gossip` CLI.

use crate::args::Args;
use gossip_core::{gossip_lower_bound, optimal_gossip_time, Algorithm, ExactResult, GossipPlanner};
use gossip_graph::Graph;
use gossip_model::{simulate_gossip, vertex_trace, CommModel};
use gossip_telemetry::{MetricsRecorder, SharedBuffer, Value};
use gossip_workloads::Family;
use serde::{Deserialize, Serialize};

/// Usage text shown by `gossip help`.
pub const USAGE: &str = "\
gossip — communication schedules for the multicast gossiping problem
          (Gonzalez, IPPS 2001: n + r rounds on any network of radius r)

commands:
  generate  --family F --n N [--seed S] [--out FILE] [--compact]
                                                       emit a graph as JSON
  plan      (--family F --n N | --graph FILE)
            [--algorithm concurrent-updown|simple|updown|telephone]
            [--out FILE]                               build + verify a schedule
  trace     --family F --n N --vertex V                per-vertex table (paper style)
  bounds    --family F --n N                           lower bounds for a network
  exact     --family F --n N [--model telephone]       exact optimum (n <= 8)
  sweep     [--sizes 16,32,64] [--seed S]              n + r across all families
  analyze   (--family F --n N | --graph FILE) [--gantt] schedule profile
  compare   (--family F --n N | --graph FILE)           all algorithms side by side
  line      --n N (N <= 6)                              the n + r - 1 line schedule
  pipeline  --family F --n N [--batches K]              repeated-gossip overlap
  energy    --n N [--range R] [--seed S]                sensor-field energy model
  stats     METRICS.json                                summarize a --metrics file

options accepted by plan / analyze / pipeline:
  --metrics FILE    record span timings, counters, and per-round simulation
                    probes to FILE (inspect with `gossip stats FILE`)

families: path ring star complete binary-tree caterpillar grid torus
          hypercube random-tree random-sparse";

/// A `--metrics FILE` recorder: the buffer captures the JSONL event stream
/// so [`write_metrics`] can bundle it with the final snapshot.
struct Metrics {
    recorder: MetricsRecorder,
    events: SharedBuffer,
    path: String,
}

/// Opens a telemetry recorder when `--metrics FILE` was passed (any
/// subcommand that plans or simulates honors the flag). The parser stores
/// value-less options as `"true"`, which is never a sensible metrics path —
/// reject it rather than silently writing a file named `true`.
fn open_metrics(args: &Args) -> Result<Option<Metrics>, String> {
    match args.options.get("metrics") {
        Some(path) if path == "true" => {
            Err("--metrics requires a file path (e.g. --metrics out.json)".to_string())
        }
        Some(path) => {
            let events = SharedBuffer::new();
            Ok(Some(Metrics {
                recorder: MetricsRecorder::with_sink(Box::new(events.clone())),
                events,
                path: path.clone(),
            }))
        }
        None => Ok(None),
    }
}

/// Writes the metrics artifact consumed by `gossip stats`:
/// `{"snapshot": {counters, gauges, histograms, spans, ...}, "events": [...]}`.
fn write_metrics(m: &Metrics) -> Result<(), String> {
    m.recorder.flush();
    let doc = Value::Object(vec![
        ("snapshot".to_string(), m.recorder.snapshot()),
        ("events".to_string(), Value::Array(m.events.lines())),
    ]);
    let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    std::fs::write(&m.path, json).map_err(|e| format!("{}: {e}", m.path))?;
    println!("wrote metrics to {}", m.path);
    Ok(())
}

fn family_by_name(name: &str) -> Result<Family, String> {
    Family::all()
        .iter()
        .copied()
        .find(|f| f.name() == name)
        .ok_or_else(|| format!("unknown family {name:?} (see `gossip help`)"))
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    if let Some(path) = args.options.get("graph") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        // JSON first; fall back to the plain edge-list text format.
        match serde_json::from_str(&text) {
            Ok(g) => Ok(g),
            Err(json_err) => gossip_graph::parse_edge_list(&text).map_err(|el_err| {
                format!("{path}: not JSON ({json_err}) nor edge list ({el_err})")
            }),
        }
    } else {
        let family = family_by_name(args.get_or("family", "ring"))?;
        let n = args.get_usize("n", 16)?;
        let seed = args.get_u64("seed", 0)?;
        Ok(family.instance(n, seed))
    }
}

/// `gossip generate`: write a family instance as JSON.
pub fn generate(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    // --compact emits single-line JSON for piping; default is pretty.
    let json = if args.flag("compact") {
        serde_json::to_string(&g).map_err(|e| e.to_string())?
    } else {
        serde_json::to_string_pretty(&g).map_err(|e| e.to_string())?
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote graph (n = {}, m = {}) to {path}", g.n(), g.m());
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Serialized form of a plan for `--out`.
#[derive(Serialize, Deserialize)]
struct PlanArtifact {
    algorithm: String,
    n: usize,
    radius: u32,
    makespan: usize,
    origin_of_message: Vec<usize>,
    schedule: gossip_model::Schedule,
}

/// `gossip plan`: build, verify, and summarize (optionally dump) a schedule.
pub fn plan(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let alg = match args.get_or("algorithm", "concurrent-updown") {
        "concurrent-updown" => Algorithm::ConcurrentUpDown,
        "simple" => Algorithm::Simple,
        "updown" => Algorithm::UpDown,
        "telephone" => Algorithm::Telephone,
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let metrics = open_metrics(args)?;
    let mut planner = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .algorithm(alg);
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let model = if alg == Algorithm::Telephone {
        CommModel::Telephone
    } else {
        CommModel::Multicast
    };
    let outcome = match &metrics {
        // The recorded run enforces the same model rules and additionally
        // streams per-round probes (sent / fan-out / idle / coverage).
        Some(m) => {
            let mut sim = gossip_model::Simulator::with_origins(&g, model, &plan.origin_of_message)
                .map_err(|e| e.to_string())?;
            sim.run_recorded(&plan.schedule, &m.recorder)
                .map_err(|e| e.to_string())?
        }
        None => gossip_model::validate_gossip_schedule(
            &g,
            &plan.schedule,
            &plan.origin_of_message,
            model,
        )
        .map_err(|e| e.to_string())?,
    };
    if !outcome.complete {
        return Err("schedule did not complete gossip (bug)".into());
    }
    println!(
        "network: n = {}, m = {}, radius r = {}",
        g.n(),
        g.m(),
        plan.radius
    );
    println!("algorithm: {}", alg.name());
    match alg {
        Algorithm::ConcurrentUpDown => println!(
            "makespan: {} rounds (guarantee n + r = {})",
            plan.makespan(),
            plan.guarantee()
        ),
        _ => println!(
            "makespan: {} rounds (concurrent-updown reference: n + r = {})",
            plan.makespan(),
            plan.guarantee()
        ),
    }
    let stats = plan.schedule.stats();
    println!(
        "verified: complete; {} transmissions, {} deliveries, max fanout {}",
        stats.transmissions, stats.deliveries, stats.max_fanout
    );
    if let Some(path) = args.options.get("out") {
        let artifact = PlanArtifact {
            algorithm: alg.name().to_string(),
            n: g.n(),
            radius: plan.radius,
            makespan: plan.makespan(),
            origin_of_message: plan.origin_of_message.clone(),
            schedule: plan.schedule.clone(),
        };
        let json = serde_json::to_string_pretty(&artifact).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote plan to {path}");
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip trace`: print one vertex's schedule in the paper's table format.
pub fn trace(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let v = args.get_usize("vertex", plan.tree.root())?;
    if v >= g.n() {
        return Err(format!("vertex {v} out of range (n = {})", g.n()));
    }
    println!("spanning tree (vertex  [DFS label, subtree range, level]):");
    print!("{}", gossip_graph::render_tree(&plan.tree));
    println!(
        "\nvertex {v}: label i = {}, level k = {}, subtree range {:?}",
        plan.tree.label(v),
        plan.tree.level(v),
        plan.tree.subtree_range(v)
    );
    println!("{}", vertex_trace(&plan.schedule, &plan.tree, v).render());
    Ok(())
}

/// `gossip bounds`: lower bounds and what the pipeline achieves.
pub fn bounds(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let plan = GossipPlanner::new(&g)
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    println!("n - 1 trivial bound:       {}", g.n().saturating_sub(1));
    println!(
        "cut-vertex bound:          {}",
        gossip_core::cut_vertex_lower_bound(&g)
    );
    println!("best lower bound:          {}", gossip_lower_bound(&g));
    println!("achieved (n + r):          {}", plan.makespan());
    Ok(())
}

/// `gossip exact`: exact optimum for tiny networks.
pub fn exact(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    if g.n() > 8 {
        return Err(format!("exact search supports n <= 8, got {}", g.n()));
    }
    let model = match args.get_or("model", "multicast") {
        "multicast" => CommModel::Multicast,
        "telephone" => CommModel::Telephone,
        other => return Err(format!("unknown model {other:?}")),
    };
    let budget = args.get_u64("budget", 50_000_000)?;
    match optimal_gossip_time(&g, model, 2 * g.n() + 4, budget) {
        ExactResult::Optimal(t) => {
            println!("optimal {} gossip time: {t} rounds", model.name());
            Ok(())
        }
        other => Err(format!("search did not converge: {other:?}")),
    }
}

/// `gossip sweep`: the Theorem 1 table across families.
pub fn sweep(args: &Args) -> Result<(), String> {
    let sizes: Vec<usize> = args
        .get_or("sizes", "16,32,64")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad size {s:?}")))
        .collect::<Result<_, _>>()?;
    let seed = args.get_u64("seed", 0)?;
    println!(
        "{:>14} {:>6} {:>6} {:>5} {:>9} {:>7} {:>6}",
        "family", "n", "m", "r", "makespan", "n + r", "ok"
    );
    for &family in Family::all() {
        for &target in &sizes {
            let g = family.instance(target, seed);
            let plan = GossipPlanner::new(&g)
                .map_err(|e| e.to_string())?
                .plan()
                .map_err(|e| e.to_string())?;
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message)
                .map_err(|e| e.to_string())?;
            println!(
                "{:>14} {:>6} {:>6} {:>5} {:>9} {:>7} {:>6}",
                family.name(),
                g.n(),
                g.m(),
                plan.radius,
                plan.makespan(),
                plan.guarantee(),
                if o.complete { "yes" } else { "NO" }
            );
        }
    }
    Ok(())
}

/// `gossip analyze`: latency/redundancy/link-load profile of the plan.
pub fn analyze(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let metrics = open_metrics(args)?;
    let mut planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        let mut sim = gossip_model::Simulator::with_origins(
            &g,
            CommModel::Multicast,
            &plan.origin_of_message,
        )
        .map_err(|e| e.to_string())?;
        sim.run_recorded(&plan.schedule, &m.recorder)
            .map_err(|e| e.to_string())?;
    }
    let a = gossip_model::analyze_schedule(&g, &plan.schedule, &plan.origin_of_message)
        .map_err(|e| e.to_string())?;
    println!("makespan:             {}", plan.makespan());
    println!(
        "last message complete: {}",
        a.last_completion()
            .map_or("never".into(), |t| t.to_string())
    );
    println!(
        "deliveries:           {} ({} redundant, {:.1}%)",
        a.total_deliveries,
        a.redundant_deliveries,
        100.0 * a.redundancy()
    );
    println!("link imbalance:       {:.2}", a.link_imbalance());
    println!("busiest links:");
    for &(u, v, uses) in a.link_loads.iter().take(5) {
        println!("  {u} -- {v}: {uses} deliveries");
    }
    let curve = gossip_model::knowledge_curve(&g, &plan.schedule, &plan.origin_of_message)
        .map_err(|e| e.to_string())?;
    println!(
        "knowledge curve:      |{}|",
        gossip_model::render_sparkline(&curve)
    );
    if args.flag("gantt") {
        println!("\nper-processor timeline (S = send, R = receive, B = both):");
        print!("{}", gossip_model::render_gantt(&plan.schedule));
    }
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip line`: the optimal n + r - 1 line schedule (paper §4 remark).
pub fn line(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 5)?;
    if !(2..=gossip_core::MAX_LINE_N).contains(&n) {
        return Err(format!(
            "line schedules are available for 2 <= n <= {}",
            gossip_core::MAX_LINE_N
        ));
    }
    let s = gossip_core::line_gossip_schedule(n);
    let g = gossip_workloads::path(n);
    let o = gossip_model::simulate_gossip(&g, &s, &gossip_model::identity_origins(n))
        .map_err(|e| e.to_string())?;
    if !o.complete {
        return Err("line schedule incomplete (bug)".into());
    }
    println!(
        "path of {n}: {} rounds = n + r - 1 (generic algorithm: {})",
        s.makespan(),
        n + n / 2
    );
    for (t, round) in s.rounds.iter().enumerate() {
        let txs: Vec<String> = round
            .transmissions
            .iter()
            .map(|x| format!("{}--m{}-->{:?}", x.from, x.msg, x.to))
            .collect();
        println!("  t{t}: {}", txs.join("  "));
    }
    Ok(())
}

/// `gossip pipeline`: minimal repeated-gossip period on the plan's tree.
pub fn pipeline(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let batches = args.get_usize("batches", 4)?.max(1);
    let metrics = open_metrics(args)?;
    let mut planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        planner = planner.recorder(&m.recorder);
    }
    let plan = planner.plan().map_err(|e| e.to_string())?;
    let period = gossip_core::min_pipeline_period(&plan.tree, batches);
    let pipelined = match &metrics {
        Some(m) => gossip_core::pipelined_gossip_recorded(&plan.tree, batches, period, &m.recorder),
        None => gossip_core::pipelined_gossip(&plan.tree, batches, period),
    }
    .ok_or("period search failed (bug)")?;
    println!("single gossip:   {} rounds (n + r)", plan.makespan());
    println!("minimal period:  {period} rounds between batch starts");
    println!(
        "{batches} batches:       {} rounds total ({:.1} amortized, {:.2}x speedup)",
        pipelined.schedule.makespan(),
        pipelined.amortized_rounds(),
        plan.makespan() as f64 / pipelined.amortized_rounds()
    );
    if let Some(m) = &metrics {
        write_metrics(m)?;
    }
    Ok(())
}

/// `gossip stats`: human summary of a metrics file written via `--metrics`.
pub fn stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gossip stats METRICS.json")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let snapshot = &doc["snapshot"];

    let section = |title: &str, key: &str, fmt: &dyn Fn(&Value) -> String| {
        if let Some(entries) = snapshot[key].as_object() {
            if !entries.is_empty() {
                println!("{title}:");
                for (name, v) in entries {
                    println!("  {name:<32} {}", fmt(v));
                }
            }
        }
    };
    let scalar = |v: &Value| {
        v.as_u64()
            .map(|u| u.to_string())
            .or_else(|| v.as_f64().map(|f| format!("{f:.3}")))
            .unwrap_or_else(|| "?".into())
    };
    let summary = |v: &Value| {
        format!(
            "n={} total={} p50={} p99={} max={}",
            scalar(&v["count"]),
            scalar(&v["total"]),
            scalar(&v["p50"]),
            scalar(&v["p99"]),
            scalar(&v["max"])
        )
    };
    section("spans (ms)", "spans", &summary);
    section("counters", "counters", &scalar);
    section("gauges", "gauges", &scalar);
    section("histograms", "histograms", &summary);

    let events = doc["events"].as_array().cloned().unwrap_or_default();
    let rounds: Vec<&Value> = events
        .iter()
        .filter(|e| e["event"].as_str() == Some("round"))
        .collect();
    println!(
        "events: {} total, {} per-round probes",
        events.len(),
        rounds.len()
    );
    if !rounds.is_empty() {
        let curve: Vec<f64> = rounds
            .iter()
            .filter_map(|e| e["coverage"].as_f64())
            .collect();
        println!(
            "coverage curve: |{}|",
            gossip_model::render_sparkline(&curve)
        );
        let last = rounds.last().unwrap();
        println!(
            "final round {}: coverage {}, {} idle receivers",
            scalar(&last["round"]),
            scalar(&last["coverage"]),
            scalar(&last["idle_receivers"])
        );
    }
    Ok(())
}

/// `gossip energy`: sensor-field rounds + radio energy, multicast vs
/// telephone.
pub fn energy(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 30)?;
    let range: f64 = args
        .get_or("range", "0.22")
        .parse()
        .map_err(|_| "--range expects a number".to_string())?;
    let seed = args.get_u64("seed", 1)?;
    let (g, pts, used) = gossip_workloads::unit_disk_connected(n, range, seed);
    let planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    let mc = planner.clone().plan().map_err(|e| e.to_string())?;
    let tel = planner
        .clone()
        .algorithm(Algorithm::Telephone)
        .plan()
        .map_err(|e| e.to_string())?;
    let e_mc = gossip_workloads::schedule_energy(&mc.schedule, &pts, 2.0);
    let e_tel = gossip_workloads::schedule_energy(&tel.schedule, &pts, 2.0);
    println!(
        "sensor field: {n} nodes, radio range {used:.2}, {} links",
        g.m()
    );
    println!("multicast: {:>5} rounds, energy {e_mc:.2}", mc.makespan());
    println!("telephone: {:>5} rounds, energy {e_tel:.2}", tel.makespan());
    println!(
        "multicast saves {:.1}% energy and {:.1}% rounds",
        100.0 * (1.0 - e_mc / e_tel),
        100.0 * (1.0 - mc.makespan() as f64 / tel.makespan() as f64)
    );
    Ok(())
}

/// `gossip compare`: all algorithms and models on one network.
pub fn compare(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let planner = GossipPlanner::new(&g).map_err(|e| e.to_string())?;
    println!("network: n = {}, m = {}", g.n(), g.m());
    println!("{:<22} {:>9} {:>9}", "algorithm", "makespan", "model");
    for alg in [
        Algorithm::ConcurrentUpDown,
        Algorithm::Simple,
        Algorithm::UpDown,
        Algorithm::Telephone,
    ] {
        let plan = planner
            .clone()
            .algorithm(alg)
            .plan()
            .map_err(|e| e.to_string())?;
        let model = if alg == Algorithm::Telephone {
            "telephone"
        } else {
            "multicast"
        };
        println!("{:<22} {:>9} {:>9}", alg.name(), plan.makespan(), model);
    }
    let bm = gossip_core::broadcast_model_gossip(&g);
    println!(
        "{:<22} {:>9} {:>9}",
        "broadcast-greedy",
        bm.makespan(),
        "broadcast"
    );
    if let Some(ham) = gossip_core::ring_gossip_schedule(&g) {
        println!(
            "{:<22} {:>9} {:>9}",
            "hamiltonian-circuit",
            ham.makespan(),
            "telephone"
        );
    }
    println!(
        "{:<22} {:>9}",
        "lower bound",
        gossip_core::gossip_lower_bound(&g)
    );
    Ok(())
}
