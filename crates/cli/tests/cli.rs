//! End-to-end tests of the `gossip` binary.

use std::process::Command;

fn gossip(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gossip"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = gossip(&["help"]);
    assert!(ok);
    for cmd in [
        "generate", "plan", "trace", "bounds", "exact", "sweep", "analyze", "line",
    ] {
        assert!(stdout.contains(cmd), "missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = gossip(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn plan_reports_guarantee() {
    let (ok, stdout, _) = gossip(&["plan", "--family", "ring", "--n", "10"]);
    assert!(ok);
    assert!(stdout.contains("makespan: 15 rounds"));
    assert!(stdout.contains("n + r = 15"));
    assert!(stdout.contains("verified: complete"));
}

#[test]
fn plan_rejects_unknown_algorithm() {
    let (ok, _, stderr) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "8",
        "--algorithm",
        "magic",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn generate_plan_round_trip() {
    let dir = std::env::temp_dir().join(format!("gossip-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.json");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = gossip(&[
        "generate", "--family", "grid", "--n", "16", "--out", path_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote graph"));

    let (ok, stdout, _) = gossip(&["plan", "--graph", path_str]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("n = 16"));
    assert!(stdout.contains("verified: complete"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_prints_paper_style_table() {
    let (ok, stdout, _) = gossip(&["trace", "--family", "path", "--n", "9", "--vertex", "4"]);
    assert!(ok);
    assert!(stdout.contains("Receive from Parent"));
    assert!(stdout.contains("Send to Children"));
}

#[test]
fn bounds_on_odd_line() {
    let (ok, stdout, _) = gossip(&["bounds", "--family", "path", "--n", "9"]);
    assert!(ok);
    assert!(stdout.contains("best lower bound:          12"));
    assert!(stdout.contains("achieved (n + r):          13"));
}

#[test]
fn exact_star_five() {
    let (ok, stdout, _) = gossip(&["exact", "--family", "star", "--n", "5"]);
    assert!(ok);
    assert!(stdout.contains("optimal multicast gossip time: 5 rounds"));
}

#[test]
fn exact_rejects_large_n() {
    let (ok, _, stderr) = gossip(&["exact", "--family", "star", "--n", "9"]);
    assert!(!ok);
    assert!(stderr.contains("n <= 8"));
}

#[test]
fn line_schedule_prints_rounds() {
    let (ok, stdout, _) = gossip(&["line", "--n", "5"]);
    assert!(ok);
    assert!(stdout.contains("6 rounds = n + r - 1"));
    assert!(stdout.contains("t0:"));
}

#[test]
fn line_rejects_oversize() {
    let (ok, _, stderr) = gossip(&["line", "--n", "12"]);
    assert!(!ok);
    assert!(stderr.contains("2 <= n <="));
}

#[test]
fn analyze_reports_zero_redundancy() {
    let (ok, stdout, _) = gossip(&["analyze", "--family", "binary-tree", "--n", "15"]);
    assert!(ok);
    assert!(stdout.contains("0 redundant"));
}

#[test]
fn duplicate_flag_rejected() {
    let (ok, _, stderr) = gossip(&["plan", "--n", "4", "--n", "5"]);
    assert!(!ok);
    assert!(stderr.contains("duplicate option"));
}
