//! End-to-end tests of the `gossip` binary.

use std::process::Command;

fn gossip(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gossip"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = gossip(&["help"]);
    assert!(ok);
    for cmd in [
        "generate", "plan", "trace", "bounds", "exact", "sweep", "analyze", "line",
    ] {
        assert!(stdout.contains(cmd), "missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = gossip(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn plan_reports_guarantee() {
    let (ok, stdout, _) = gossip(&["plan", "--family", "ring", "--n", "10"]);
    assert!(ok);
    assert!(stdout.contains("makespan: 15 rounds"));
    assert!(stdout.contains("n + r = 15"));
    assert!(stdout.contains("verified (bitset kernel): complete"));
}

#[test]
fn plan_engine_oracle_and_both() {
    let (ok, stdout, _) = gossip(&[
        "plan", "--family", "ring", "--n", "10", "--engine", "oracle",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("verified (oracle simulator): complete"));

    let (ok, stdout, _) = gossip(&["plan", "--family", "ring", "--n", "10", "--engine", "both"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("verified (oracle + kernel, outcomes identical): complete"));
    assert!(stdout.contains("engine timings:"));
}

#[test]
fn plan_rejects_unknown_engine() {
    let (ok, _, stderr) = gossip(&["plan", "--family", "ring", "--n", "8", "--engine", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("--engine must be oracle, kernel, or both"));
}

#[test]
fn plan_rejects_unknown_algorithm() {
    let (ok, _, stderr) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "8",
        "--algorithm",
        "magic",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn generate_plan_round_trip() {
    let dir = std::env::temp_dir().join(format!("gossip-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.json");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = gossip(&[
        "generate", "--family", "grid", "--n", "16", "--out", path_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote graph"));

    let (ok, stdout, _) = gossip(&["plan", "--graph", path_str]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("n = 16"));
    assert!(stdout.contains("verified (bitset kernel): complete"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_prints_paper_style_table() {
    let (ok, stdout, _) = gossip(&["trace", "--family", "path", "--n", "9", "--vertex", "4"]);
    assert!(ok);
    assert!(stdout.contains("Receive from Parent"));
    assert!(stdout.contains("Send to Children"));
}

#[test]
fn bounds_on_odd_line() {
    let (ok, stdout, _) = gossip(&["bounds", "--family", "path", "--n", "9"]);
    assert!(ok);
    assert!(stdout.contains("best lower bound:          12"));
    assert!(stdout.contains("achieved (n + r):          13"));
}

#[test]
fn exact_star_five() {
    let (ok, stdout, _) = gossip(&["exact", "--family", "star", "--n", "5"]);
    assert!(ok);
    assert!(stdout.contains("optimal multicast gossip time: 5 rounds"));
}

#[test]
fn exact_rejects_large_n() {
    let (ok, _, stderr) = gossip(&["exact", "--family", "star", "--n", "9"]);
    assert!(!ok);
    assert!(stderr.contains("n <= 8"));
}

#[test]
fn line_schedule_prints_rounds() {
    let (ok, stdout, _) = gossip(&["line", "--n", "5"]);
    assert!(ok);
    assert!(stdout.contains("6 rounds = n + r - 1"));
    assert!(stdout.contains("t0:"));
}

#[test]
fn line_rejects_oversize() {
    let (ok, _, stderr) = gossip(&["line", "--n", "12"]);
    assert!(!ok);
    assert!(stderr.contains("2 <= n <="));
}

#[test]
fn analyze_reports_zero_redundancy() {
    let (ok, stdout, _) = gossip(&["analyze", "--family", "binary-tree", "--n", "15"]);
    assert!(ok);
    assert!(stdout.contains("0 redundant"));
}

#[test]
fn duplicate_flag_rejected() {
    let (ok, _, stderr) = gossip(&["plan", "--n", "4", "--n", "5"]);
    assert!(!ok);
    assert!(stderr.contains("duplicate option"));
}

/// Like [`gossip`] but feeding `stdin` to the child process.
fn gossip_stdin_bytes(args: &[&str], stdin: &[u8]) -> (bool, String, String) {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_gossip"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // The child may exit without draining stdin (usage errors reject
    // `diff - -` before reading it), closing the pipe mid-write; a broken
    // pipe is not a test failure — callers assert on the output.
    match child.stdin.take().expect("piped stdin").write_all(stdin) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("write stdin: {e}"),
    }
    let out = child.wait_with_output().expect("binary exits");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn gossip_stdin(args: &[&str], stdin: &str) -> (bool, String, String) {
    gossip_stdin_bytes(args, stdin.as_bytes())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gossip-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Minimal structural check that a file is a Chrome Trace Event array:
/// a JSON array whose every element carries `ph`, `ts`, `pid`, `tid`.
/// (No JSON dependency in this test crate, so we lex the essentials.)
fn assert_chrome_trace(text: &str) {
    let text = text.trim();
    assert!(
        text.starts_with('[') && text.ends_with(']'),
        "not a JSON array"
    );
    // Split into top-level objects by brace depth.
    let mut depth = 0usize;
    let mut start = None;
    let mut objects = Vec::new();
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in text.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    objects.push(&text[start.unwrap()..=i]);
                }
            }
            _ => {}
        }
    }
    assert!(!objects.is_empty(), "trace has no events");
    for (i, obj) in objects.iter().enumerate() {
        for field in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
            assert!(obj.contains(field), "event {i} missing {field}: {obj}");
        }
    }
}

#[test]
fn plan_trace_out_writes_chrome_trace() {
    let dir = temp_dir("trace");
    let path = dir.join("t.json");
    let path_str = path.to_str().unwrap();
    let (ok, stdout, stderr) = gossip(&[
        "plan",
        "--graph",
        "petersen",
        "--algo",
        "concurrent",
        "--trace-out",
        path_str,
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("wrote Chrome trace"));
    let text = std::fs::read_to_string(&path).unwrap();
    assert_chrome_trace(&text);
    // Rule tags from the annotated schedule label the slices.
    assert!(text.contains("[U3]") || text.contains("[U4"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_trace_out_wall_adds_executor_lanes() {
    let dir = temp_dir("wall");
    let path = dir.join("tw.json");
    let path_str = path.to_str().unwrap();
    let (ok, stdout, stderr) = gossip(&[
        "plan",
        "--graph",
        "petersen",
        "--algo",
        "concurrent",
        "--trace-out",
        path_str,
        "--wall",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert_chrome_trace(&text);
    assert!(text.contains("online executor (wall clock)"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn provenance_reports_critical_path_within_bound() {
    let (ok, stdout, _) = gossip(&["provenance", "--graph", "petersen", "--algo", "concurrent"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("first-delivery DAG: 90 edges"));
    assert!(stdout.contains("bound n + r = 12"));
    assert!(stdout.contains("vertex slack"));
}

#[test]
fn provenance_artifact_has_schema_version() {
    let dir = temp_dir("prov");
    let path = dir.join("p.json");
    let path_str = path.to_str().unwrap();
    let (ok, _, stderr) = gossip(&[
        "provenance",
        "--family",
        "ring",
        "--n",
        "8",
        "--out",
        path_str,
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"schema_version\": 1"), "{text}");
    assert!(text.contains("\"kind\": \"provenance\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_diff_passes_identical_and_flags_regression() {
    let dir = temp_dir("diff");
    let old = dir.join("old.json");
    let new_ok = dir.join("new_ok.json");
    let new_bad = dir.join("new_bad.json");
    std::fs::write(
        &old,
        r#"{"schema_version": 1, "rows": [{"family": "ring", "n": 16, "makespan": 17, "plan_ms": 1.0}]}"#,
    )
    .unwrap();
    std::fs::copy(&old, &new_ok).unwrap();
    std::fs::write(
        &new_bad,
        r#"{"schema_version": 1, "rows": [{"family": "ring", "n": 16, "makespan": 22, "plan_ms": 1.0}]}"#,
    )
    .unwrap();

    let (ok, stdout, _) = gossip(&[
        "bench-diff",
        old.to_str().unwrap(),
        new_ok.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("no regressions"));

    let (ok, stdout, stderr) = gossip(&[
        "bench-diff",
        old.to_str().unwrap(),
        new_bad.to_str().unwrap(),
    ]);
    assert!(!ok, "regression must exit nonzero");
    assert!(stdout.contains("REGRESSION ring/n=16 makespan"), "{stdout}");
    assert!(stderr.contains("regression(s)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_stdout_pipes_into_stats_stdin() {
    let (ok, stdout, stderr) = gossip(&["plan", "--family", "ring", "--n", "8", "--metrics", "-"]);
    assert!(ok, "{stderr}");
    // Human output went to stderr; stdout is the pure JSON artifact.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stderr.contains("makespan"), "{stderr}");

    let (ok, stats_out, stats_err) = gossip_stdin(&["stats", "-"], &stdout);
    assert!(ok, "{stats_err}");
    assert!(stats_out.contains("plan/makespan"), "{stats_out}");
}

#[test]
fn stats_rejects_unknown_schema_version() {
    let (ok, _, stderr) = gossip_stdin(
        &["stats", "-"],
        r#"{"schema_version": 99, "snapshot": {}, "events": []}"#,
    );
    assert!(!ok);
    assert!(stderr.contains("schema_version"), "{stderr}");
}

#[test]
fn stats_renders_recovery_report_epoch_table() {
    let dir = temp_dir("stats-recovery");
    let out = dir.join("rec.json");
    let (ok, _, stderr) = gossip(&[
        "recover",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.3",
        "--fault-seed",
        "42",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = gossip(&["stats", out.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("recovery report: n = 10"), "{stdout}");
    assert!(stdout.contains("epoch"), "{stdout}");
    assert!(stdout.contains("base"), "{stdout}");
    assert!(stdout.contains("retransmissions"), "{stdout}");
    assert!(stdout.contains("— recovered"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Minimal HTTP GET over a raw socket (the test crate has no HTTP client);
/// returns the full response, headers included.
fn http_get(addr: &str, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// Extracts the value of a single-sample metric line (`name 42`).
fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn serve_exposes_live_progress_on_random_port() {
    use std::process::Stdio;
    let dir = temp_dir("serve");
    let addr_file = dir.join("addr.txt");
    let child = Command::new(env!("CARGO_BIN_EXE_gossip"))
        .args([
            "serve",
            "--graph",
            "fig4",
            "--loss-rate",
            "0.1",
            "--fault-seed",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--round-delay-ms",
            "150",
            "--linger-ms",
            "400",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");

    // The addr file appears once the server is listening.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if s.trim().contains(':') {
                break s.trim().to_string();
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "addr file never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };

    let health = http_get(&addr, "/healthz");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // First sighting of the round gauge, then a later scrape: the counter
    // must advance while the (paced) run is still going.
    let first = loop {
        let m = http_get(&addr, "/metrics");
        if let Some(v) = metric_value(&m, "gossip_round_current") {
            break v;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "round gauge never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    let last = loop {
        let m = http_get(&addr, "/metrics");
        let v = metric_value(&m, "gossip_round_current").expect("gauge persists");
        let done = http_get(&addr, "/healthz").contains("\"done\":true");
        if v > first || done {
            break v;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "round gauge never advanced"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    assert!(
        last > first,
        "gossip_round_current must advance during the run ({first} -> {last})"
    );

    let out = child.wait_with_output().expect("serve exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("serving on http://127.0.0.1:"), "{stdout}");
    assert!(stdout.contains("recovered: yes"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dash_builds_self_contained_report_from_artifacts() {
    let dir = temp_dir("dash");
    let rec = dir.join("rec.json");
    let met = dir.join("met.json");
    let report = dir.join("report.html");
    let (ok, _, stderr) = gossip(&[
        "recover",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.2",
        "--fault-seed",
        "5",
        "--out",
        rec.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok, _, stderr) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "8",
        "--metrics",
        met.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");

    let (ok, stdout, stderr) = gossip(&[
        "dash",
        rec.to_str().unwrap(),
        met.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("(recovery)"), "{stdout}");
    assert!(stdout.contains("(metrics)"), "{stdout}");
    assert!(stdout.contains("wrote dashboard (2 runs"), "{stdout}");
    let html = std::fs::read_to_string(&report).unwrap();
    assert!(html.starts_with("<!doctype html>"), "{html}");
    assert!(html.contains("<svg"), "dashboard needs sparklines");
    for marker in ["http://", "https://", "src=", "href="] {
        assert!(!html.contains(marker), "external asset marker {marker:?}");
    }

    // A directory argument sweeps every artifact inside it.
    let (ok, stdout, _) = gossip(&[
        "dash",
        dir.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote dashboard (2 runs"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dash_requires_artifacts() {
    let (ok, _, stderr) = gossip(&["dash"]);
    assert!(!ok);
    assert!(stderr.contains("usage: gossip dash"), "{stderr}");
}

#[test]
fn recover_heals_lossy_run_and_exits_zero() {
    let (ok, stdout, stderr) = gossip(&[
        "recover",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.3",
        "--fault-seed",
        "42",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("fault plan: seed 42, loss rate 0.3"));
    assert!(stdout.contains("recovered: every reachable"), "{stdout}");
    assert!(stdout.contains("retransmissions"));
}

#[test]
fn recover_zero_faults_reports_no_overhead() {
    let (ok, stdout, _) = gossip(&[
        "recover",
        "--family",
        "ring",
        "--n",
        "8",
        "--fault-seed",
        "0",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("overhead +0"), "{stdout}");
    assert!(stdout.contains("0 retransmissions"), "{stdout}");
}

#[test]
fn recover_exhausted_budget_exits_nonzero() {
    let (ok, _, stderr) = gossip(&[
        "recover",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.5",
        "--fault-seed",
        "42",
        "--max-epochs",
        "0",
    ]);
    assert!(!ok, "budget 0 under heavy loss must fail");
    assert!(stderr.contains("recovery incomplete"), "{stderr}");
}

#[test]
fn recover_artifact_and_trace_files() {
    let dir = temp_dir("recover");
    let out = dir.join("report.json");
    let trace = dir.join("trace.json");
    let (ok, stdout, stderr) = gossip(&[
        "recover",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.2",
        "--crash",
        "9@3",
        "--fault-seed",
        "5",
        "--out",
        out.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    let report = std::fs::read_to_string(&out).unwrap();
    assert!(report.contains("\"schema_version\": 1"), "{report}");
    assert!(report.contains("\"kind\": \"recovery\""));
    assert!(report.contains("\"epochs\""));
    assert_chrome_trace(&std::fs::read_to_string(&trace).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_rejects_bad_fault_specs() {
    let (ok, _, stderr) = gossip(&[
        "recover", "--family", "ring", "--n", "8", "--crash", "banana",
    ]);
    assert!(!ok);
    assert!(stderr.contains("crash"), "{stderr}");

    let (ok, _, stderr) = gossip(&[
        "recover",
        "--family",
        "ring",
        "--n",
        "8",
        "--outage",
        "0-99@0..5",
    ]);
    assert!(!ok, "out-of-range outage must be rejected");
    assert!(!stderr.is_empty());
}

#[test]
fn plan_with_fault_flags_previews_losses() {
    let (ok, stdout, _) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "10",
        "--loss-rate",
        "0.2",
        "--fault-seed",
        "7",
    ]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("under faults (seed 7, loss rate 0.2)"),
        "{stdout}"
    );
    assert!(stdout.contains("gossip recover"), "{stdout}");
}

#[test]
fn plan_flight_out_inspect_and_diff_workflow() {
    let dir = temp_dir("flight");
    let clean = dir.join("clean.gfr");
    let lossy = dir.join("lossy.gfr");
    let clean = clean.to_str().unwrap();
    let lossy = lossy.to_str().unwrap();

    let (ok, stdout, _) = gossip(&["plan", "--graph", "fig4", "--flight-out", clean]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote flight record"), "{stdout}");

    let (ok, stdout, _) = gossip(&[
        "plan",
        "--graph",
        "fig4",
        "--loss-rate",
        "0.1",
        "--fault-seed",
        "1",
        "--flight-out",
        lossy,
    ]);
    assert!(ok, "{stdout}");

    // Time-travel inspection of a mid-run round.
    let (ok, stdout, _) = gossip(&["inspect", clean, "--round", "5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("flight record: engine"), "{stdout}");
    assert!(stdout.contains("state after round 5"), "{stdout}");

    // A capture diffed against itself is identical: exit 0.
    let (ok, stdout, _) = gossip(&["diff", clean, clean]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("runs are identical"), "{stdout}");

    // Clean vs lossy diverges: nonzero exit naming the first divergent round.
    let (ok, stdout, stderr) = gossip(&["diff", clean, lossy]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("runs DIVERGE at round"), "{stdout}");
    assert!(stderr.contains("diverge"), "{stderr}");
}

#[test]
fn stats_classifies_flight_artifacts() {
    let dir = temp_dir("flight-stats");
    let run = dir.join("run.gfr");
    let run = run.to_str().unwrap();
    let (ok, stdout, _) = gossip(&["plan", "--family", "ring", "--n", "10", "--flight-out", run]);
    assert!(ok, "{stdout}");

    let (ok, stdout, _) = gossip(&["stats", run]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("flight record: engine kernel"), "{stdout}");
    assert!(stdout.contains("gossip inspect"), "{stdout}");
}

#[test]
fn profile_reports_phase_table_and_attribution() {
    let (ok, stdout, stderr) = gossip(&["profile", "petersen"]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("network: n = 10"), "{stdout}");
    for phase in [
        "plan",
        "tree",
        "bfs_sweep",
        "generate",
        "flatten",
        "validate",
    ] {
        assert!(stdout.contains(phase), "missing phase {phase}: {stdout}");
    }
    assert!(stdout.contains("attribution:"), "{stdout}");
    assert!(stdout.contains("ms in named phases"), "{stdout}");
    assert!(stdout.contains("allocation tracking:"), "{stdout}");
}

#[test]
fn profile_writes_artifact_and_collapsed_stacks() {
    let dir = temp_dir("profile");
    let prof = dir.join("PROF.json");
    let flame = dir.join("prof.flame");
    let (ok, stdout, stderr) = gossip(&[
        "profile",
        "fig4",
        "--out",
        prof.to_str().unwrap(),
        "--flame",
        flame.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("wrote profile to"), "{stdout}");
    assert!(stdout.contains("collapsed stack line"), "{stdout}");

    let text = std::fs::read_to_string(&prof).unwrap();
    assert!(text.contains("\"schema_version\": 1"), "{text}");
    assert!(text.contains("\"kind\": \"profile\""), "{text}");
    assert!(text.contains("\"phases\""), "{text}");

    // Every flame line is `path;with;semicolons <integer>` — the collapsed
    // stack format flamegraph.pl and speedscope consume.
    let flame_text = std::fs::read_to_string(&flame).unwrap();
    assert!(!flame_text.trim().is_empty(), "flame file is empty");
    for line in flame_text.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(!path.is_empty(), "empty path in {line:?}");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
    }
    assert!(
        flame_text.lines().any(|l| l.starts_with("plan;tree")),
        "{flame_text}"
    );

    // The PROF artifact renders through stats and ingests into dash.
    let (ok, stdout, stderr) = gossip(&["stats", prof.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("planner profile:"), "{stdout}");
    assert!(stdout.contains("attributed"), "{stdout}");

    let report = dir.join("report.html");
    let (ok, stdout, _) = gossip(&[
        "dash",
        prof.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("(profile)"), "{stdout}");
    let html = std::fs::read_to_string(&report).unwrap();
    assert!(html.contains("construction time by phase"), "{html}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_profile_out_coexists_with_flight_out() {
    let dir = temp_dir("plan-profile");
    let prof = dir.join("PROF.json");
    let flight = dir.join("run.gfr");
    let (ok, stdout, stderr) = gossip(&[
        "plan",
        "--graph",
        "fig4",
        "--profile-out",
        prof.to_str().unwrap(),
        "--flight-out",
        flight.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("wrote profile to"), "{stdout}");
    assert!(stdout.contains("wrote flight record"), "{stdout}");
    let text = std::fs::read_to_string(&prof).unwrap();
    assert!(text.contains("\"kind\": \"profile\""), "{text}");
    assert!(std::fs::metadata(&flight).unwrap().len() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_requires_path_arguments_for_out_flags() {
    let (ok, _, stderr) = gossip(&["profile", "petersen", "--out"]);
    assert!(!ok);
    assert!(stderr.contains("--out requires a file path"), "{stderr}");
}

#[test]
fn stats_rejects_unknown_profile_schema_version() {
    let (ok, _, stderr) = gossip_stdin(
        &["stats", "-"],
        r#"{"schema_version": 99, "kind": "profile", "phases": []}"#,
    );
    assert!(!ok);
    assert!(stderr.contains("schema_version"), "{stderr}");
}

#[test]
fn inspect_rejects_non_flight_files() {
    let dir = temp_dir("flight-junk");
    let junk = dir.join("junk.gfr");
    std::fs::write(&junk, b"{\"not\": \"a flight record\"}").unwrap();
    let (ok, _, stderr) = gossip(&["inspect", junk.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("not a flight record"), "{stderr}");
}

#[test]
fn bench_diff_json_reports_per_field_verdicts() {
    let dir = temp_dir("diff-json");
    let old = dir.join("old.json");
    let new_bad = dir.join("new_bad.json");
    std::fs::write(
        &old,
        r#"{"schema_version": 1, "rows": [{"family": "ring", "n": 16, "makespan": 17, "plan_ms": 1.0}]}"#,
    )
    .unwrap();
    std::fs::write(
        &new_bad,
        r#"{"schema_version": 1, "rows": [{"family": "ring", "n": 16, "makespan": 22, "plan_ms": 1.0}]}"#,
    )
    .unwrap();
    let (ok, stdout, stderr) = gossip(&[
        "bench-diff",
        old.to_str().unwrap(),
        new_bad.to_str().unwrap(),
        "--json",
    ]);
    assert!(!ok, "regression must still exit nonzero under --json");
    assert!(stderr.contains("regression(s)"), "{stderr}");
    // Machine-readable body: overall verdict plus one check per field,
    // each carrying the threshold it was judged against.
    assert!(stdout.contains("\"kind\": \"bench-diff\""), "{stdout}");
    assert!(stdout.contains("\"ok\": false"), "{stdout}");
    assert!(stdout.contains("\"field\": \"makespan\""), "{stdout}");
    assert!(stdout.contains("\"regime\": \"deterministic\""), "{stdout}");
    assert!(stdout.contains("\"regime\": \"wall\""), "{stdout}");
    assert!(stdout.contains("\"threshold\""), "{stdout}");
    assert!(stdout.contains("\"delta_pct\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_alerts_fire_render_and_gate() {
    let dir = temp_dir("alerts");
    let rules = dir.join("rules.json");
    let artifact = dir.join("alerts.json");
    // A hair-trigger loss-spike rule: any lost delivery fires it.
    std::fs::write(
        &rules,
        r#"{"schema_version": 1, "rules": [
            {"rule": "loss_spike", "rate": 0.01, "min_count": 1, "severity": "critical"}]}"#,
    )
    .unwrap();
    let lossy = [
        "plan",
        "--graph",
        "petersen",
        "--loss-rate",
        "0.9",
        "--fault-seed",
        "1",
        "--alerts",
        rules.to_str().unwrap(),
    ];
    let (ok, stdout, stderr) =
        gossip(&[&lossy[..], &["--alerts-out", artifact.to_str().unwrap()]].concat());
    assert!(ok, "{stderr}");
    assert!(stdout.contains("alerts:"), "{stdout}");
    assert!(stdout.contains("[critical] loss_spike"), "{stdout}");
    assert!(stdout.contains("wrote alerts artifact"), "{stdout}");

    let (ok, stats_out, stats_err) = gossip(&["stats", artifact.to_str().unwrap()]);
    assert!(ok, "{stats_err}");
    assert!(stats_out.contains("alerts artifact:"), "{stats_out}");
    assert!(stats_out.contains("loss_spike"), "{stats_out}");

    // --alerts-fatal turns the fired rule into a gate.
    let (ok, _, stderr) = gossip(&[&lossy[..], &["--alerts-fatal"]].concat());
    assert!(!ok, "--alerts-fatal must exit nonzero when a rule fired");
    assert!(stderr.contains("--alerts-fatal"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_clean_run_fires_no_alerts() {
    // Bare --alerts enables the built-in rule set; a clean fast run must
    // end silent and pass even under --alerts-fatal.
    let (ok, stdout, stderr) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "8",
        "--alerts",
        "--alerts-fatal",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("alerts: none fired"), "{stdout}");
}

#[test]
fn dash_check_gates_on_doctored_regression() {
    let dir = temp_dir("dash-check");
    let profile = |makespan: u64| {
        format!(
            r#"{{"schema_version": 1, "kind": "profile", "n": 64, "m": 96,
                 "makespan": {makespan}, "plan_ms": 1.0}}"#
        )
    };
    for i in 0..5 {
        std::fs::write(dir.join(format!("PROF_{i}.json")), profile(130)).unwrap();
    }
    let report = dir.join("report.html");
    let (ok, stdout, stderr) = gossip(&[
        "dash",
        dir.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
        "--check",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("check: no cross-run regressions detected"),
        "{stdout}"
    );

    // Doctor the newest run to a 2x makespan: --check must exit nonzero
    // and name the offender.
    std::fs::write(dir.join("PROF_4.json"), profile(260)).unwrap();
    let (ok, stdout, stderr) = gossip(&[
        "dash",
        dir.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
        "--check",
    ]);
    assert!(!ok, "doctored set must fail --check");
    assert!(stdout.contains("regression:"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(stderr.contains("regression(s) detected"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_and_diff_read_flight_records_from_stdin() {
    let dir = temp_dir("flight-stdin");
    let gfr = dir.join("run.gfr");
    let (ok, _, stderr) = gossip(&[
        "plan",
        "--family",
        "ring",
        "--n",
        "8",
        "--flight-out",
        gfr.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let bytes = std::fs::read(&gfr).unwrap();

    let (ok, stdout, stderr) = gossip_stdin_bytes(&["inspect", "-"], &bytes);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("flight record:"), "{stdout}");

    let (ok, stdout, stderr) = gossip_stdin_bytes(&["diff", "-", gfr.to_str().unwrap()], &bytes);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("identical"), "{stdout}");

    // Junk on stdin gets the same magic-sniff rejection as a junk file.
    let (ok, _, stderr) = gossip_stdin_bytes(&["inspect", "-"], b"not a capture");
    assert!(!ok);
    assert!(stderr.contains("not a flight record"), "{stderr}");

    // Both sides of a diff cannot stream from one stdin.
    let (ok, _, stderr) = gossip_stdin_bytes(&["diff", "-", "-"], &bytes);
    assert!(!ok);
    assert!(stderr.contains("stdin"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
