//! Lower bounds on gossip time.
//!
//! The paper gives two: the trivial `n - 1` (every processor must receive
//! `n - 1` messages, at most one per round) and, for the straight line with
//! `n = 2m + 1` processors, `n + r - 1` — the last message to arrive at the
//! center still has to reach an end of the line.
//!
//! The line argument generalizes to any **cut vertex** `c`: all `n - 1`
//! foreign messages arrive at `c` one per round, so the last arrives no
//! earlier than `n - 1`; that message originated in some component `A` of
//! `g - c` and must still travel from `c` to the farthest vertex *outside*
//! `A`. A schedule gets to choose which message is last, so the bound takes
//! the minimum over components:
//!
//! `T >= n - 1 + min_A max_{w ∉ A ∪ {c}} dist(c, w)`.
//!
//! On the odd line with `c` = center both sides have depth `r`, recovering
//! the paper's `n + r - 1` exactly.

use gossip_graph::{articulation_points, bfs, Graph};

/// The trivial lower bound `n - 1` (0 for `n <= 1`).
pub fn trivial_lower_bound(n: usize) -> usize {
    n.saturating_sub(1)
}

/// The cut-vertex lower bound described in the module docs, maximized over
/// all articulation points; `0` when the graph has none.
pub fn cut_vertex_lower_bound(g: &Graph) -> usize {
    let n = g.n();
    if n < 3 {
        return 0;
    }
    let mut best = 0usize;
    for c in articulation_points(g) {
        // Distances from c and the component id of each non-c vertex in
        // g - c: both come out of BFS sweeps of the intact graph (distances)
        // plus a component labelling of g - c.
        let dist = bfs(g, c).dist;
        let comp = components_without(g, c);
        let k = comp
            .iter()
            .filter(|&&x| x != u32::MAX)
            .max()
            .map_or(0, |&m| m as usize + 1);
        if k < 2 {
            continue;
        }
        // depth[a] = farthest distance from c among component a's vertices.
        let mut depth = vec![0u32; k];
        for v in 0..n {
            if v != c {
                let a = comp[v] as usize;
                depth[a] = depth[a].max(dist[v]);
            }
        }
        // For a last-message origin component A, the reach needed is the
        // max depth among the *other* components.
        let max1 = depth.iter().copied().max().unwrap_or(0);
        let max2 = {
            let mut sorted = depth.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.get(1).copied().unwrap_or(0)
        };
        // min over A of (max depth outside A): removing the deepest
        // component leaves max2; removing any other leaves max1.
        let reach = max2.min(max1) as usize;
        best = best.max(n - 1 + reach);
    }
    best
}

/// The best lower bound this crate knows for gossiping on `g` under the
/// multicast model: `max(n - 1, cut-vertex bound)`.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::gossip_lower_bound;
///
/// // Odd line with 7 processors: the paper's n + r - 1 = 9.
/// let g = Graph::from_edges(7, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,6)]).unwrap();
/// assert_eq!(gossip_lower_bound(&g), 7 + 3 - 1);
///
/// // A ring has no cut vertex: only the trivial bound applies.
/// let ring = Graph::from_edges(5, &[(0,1),(1,2),(2,3),(3,4),(4,0)]).unwrap();
/// assert_eq!(gossip_lower_bound(&ring), 4);
/// ```
pub fn gossip_lower_bound(g: &Graph) -> usize {
    trivial_lower_bound(g.n()).max(cut_vertex_lower_bound(g))
}

/// Component labels of `g - c` (vertex `c` gets `u32::MAX`).
fn components_without(g: &Graph, c: usize) -> Vec<u32> {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = Vec::new();
    for s in 0..n {
        if s == c || comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in g.neighbors_raw(u) {
                let w = w as usize;
                if w != c && comp[w] == u32::MAX {
                    comp[w] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn odd_lines_match_paper() {
        // n = 2m + 1, r = m: bound n + r - 1.
        for m in 1..6 {
            let n = 2 * m + 1;
            assert_eq!(gossip_lower_bound(&path(n)), n + m - 1, "m = {m}");
        }
    }

    #[test]
    fn even_lines() {
        // Center vertex at ⌊n/2⌋: sides of depth n/2 and n/2 - 1; the bound
        // is n - 1 + (n/2 - 1) via the min over sides.
        let g = path(6);
        assert_eq!(gossip_lower_bound(&g), 5 + 2);
    }

    #[test]
    fn star_bound() {
        // Center is a cut vertex with all components depth 1: n - 1 + 1.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_eq!(gossip_lower_bound(&g), 6);
    }

    #[test]
    fn biconnected_graphs_get_trivial_bound() {
        let ring = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(gossip_lower_bound(&ring), 5);
        assert_eq!(cut_vertex_lower_bound(&ring), 0);
    }

    #[test]
    fn lopsided_spider() {
        // c with a depth-3 leg and a depth-1 leg: last message can be chosen
        // from the deep leg, needing only depth-1 reach: n - 1 + 1.
        // Vertices: 0 = c, leg A: 1-2-3, leg B: 4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]).unwrap();
        // Cut vertices: 0, 1, 2. Vertex 1 splits {0, 4} (depths 1, 2 from 1)
        // and {2, 3}: depth max {2,3} side = 2, other = 2 -> min = 2:
        // bound = 4 + 2 = 6. Vertex 0: legs depth 3 and 1 -> min = 1: 4 + 1.
        // Vertex 2: sides {3} depth 1 and {1,0,4} depth 2 -> min 1... wait
        // depth from 2: {1:1, 0:2, 4:3} -> 3 and {3:1} -> min(3,1) = 1: 4+1.
        assert_eq!(gossip_lower_bound(&g), 6);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(trivial_lower_bound(0), 0);
        assert_eq!(trivial_lower_bound(1), 0);
        assert_eq!(
            gossip_lower_bound(&Graph::from_edges(2, &[(0, 1)]).unwrap()),
            1
        );
    }
}
