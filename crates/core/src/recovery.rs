//! Self-healing recovery: residual planning and epoch-based repair.
//!
//! The paper's `n + r` schedule assumes every transmission lands. When it
//! doesn't — sampled loss, link outages, crash-stop failures (see
//! `gossip_model::fault_plan`) — a lossy run ends with a *residual*: the
//! (message, vertex) pairs the faults kept apart. This module closes that
//! gap in two layers:
//!
//! - [`plan_completion`] is the residual planner: given post-fault hold
//!   sets and the set of surviving processors, it greedily emits a
//!   conflict-free completion schedule (every round obeys the one-send /
//!   one-receive multicast rules) that spreads each missing message from
//!   its surviving holders outward. Pairs no surviving holder can reach —
//!   the message is extinct among survivors, or crashes disconnected them —
//!   are reported as abandoned rather than looped on forever.
//! - [`ResilientExecutor`] wraps execution with epoch-based repair: run the
//!   base schedule lossily, detect the residual, replan, re-run — repair
//!   epochs execute under the *same* fault plan (faults keep firing at the
//!   continuing absolute round index), so repairs can themselves fail and
//!   trigger further epochs, up to a bounded retry budget. The outcome is a
//!   [`RecoveryReport`]: epochs, retransmissions, total rounds versus the
//!   baseline, the combined transcript, and any abandoned pairs.

use gossip_graph::Graph;
use gossip_model::{
    BitSet, CommModel, FaultPlan, FlatSchedule, LossyOutcome, LostDelivery, ModelError, Schedule,
    SimKernel, Transmission,
};
use gossip_telemetry::{ChromeTrace, NoopRecorder, Recorder, RecorderExt, Value};

/// A conflict-free completion schedule for a residual, plus the pairs it
/// could not cover.
#[derive(Debug, Clone)]
pub struct ResidualPlan {
    /// The completion schedule (rounds indexed from 0; the executor shifts
    /// them to absolute time).
    pub schedule: Schedule,
    /// The (message, vertex) pairs the schedule delivers (assuming no
    /// further faults).
    pub covered: Vec<(u32, usize)>,
    /// The pairs no surviving holder can reach: the message is extinct
    /// among survivors or the survivors are disconnected from every holder.
    pub abandoned: Vec<(u32, usize)>,
}

/// Greedily plans a conflict-free schedule completing gossip among the
/// surviving processors.
///
/// `holds[v]` is the post-fault hold set of processor `v`; `alive[v]` says
/// whether `v` survives (dead processors neither send nor receive, and
/// their missing pairs are not planned for). Each round, every unused
/// surviving holder picks the held message that reaches the most surviving
/// not-yet-receiving neighbours still missing it — sender-centric multicast
/// maximization. Rounds are emitted until no transmission can make
/// progress; whatever is still missing then is abandoned.
pub fn plan_completion(g: &Graph, holds: &[BitSet], alive: &[bool]) -> ResidualPlan {
    let n = g.n();
    assert_eq!(holds.len(), n, "hold sets for a different processor count");
    assert_eq!(alive.len(), n, "alive mask for a different processor count");
    let n_msgs = holds.first().map_or(0, BitSet::capacity);
    let mut work: Vec<BitSet> = holds.to_vec();
    let missing_pairs = |work: &[BitSet]| -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        for (v, h) in work.iter().enumerate() {
            if !alive[v] {
                continue;
            }
            for m in 0..n_msgs {
                if !h.contains(m) {
                    out.push((m as u32, v));
                }
            }
        }
        out
    };
    let initially_missing = missing_pairs(&work);

    let mut schedule = Schedule::new(n);
    let mut recv_used = vec![false; n];
    let mut t = 0usize;
    loop {
        let mut round_txs: Vec<Transmission> = Vec::new();
        recv_used.iter_mut().for_each(|r| *r = false);
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            // The best multicast v can make: the held message reaching the
            // most surviving, still-free neighbours that miss it.
            let mut best: Option<(usize, Vec<usize>)> = None;
            for m in work[v].iter() {
                let dests: Vec<usize> = g
                    .neighbors(v)
                    .filter(|&d| alive[d] && !recv_used[d] && !work[d].contains(m))
                    .collect();
                if !dests.is_empty() && best.as_ref().is_none_or(|(_, b)| dests.len() > b.len()) {
                    best = Some((m, dests));
                }
            }
            if let Some((m, dests)) = best {
                for &d in &dests {
                    recv_used[d] = true;
                }
                round_txs.push(Transmission::new(m as u32, v, dests));
            }
        }
        if round_txs.is_empty() {
            break;
        }
        // Commit the round: deliveries land before the next round plans.
        for tx in &round_txs {
            for &d in &tx.to {
                work[d].insert(tx.msg as usize);
            }
            schedule.add_transmission(t, tx.clone());
        }
        t += 1;
    }

    let abandoned = missing_pairs(&work);
    let covered = initially_missing
        .into_iter()
        .filter(|p| !abandoned.contains(p))
        .collect();
    ResidualPlan {
        schedule,
        covered,
        abandoned,
    }
}

/// What one epoch of execution (the base run, or one repair pass) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// Epoch index: 0 is the base schedule, 1.. are repair passes.
    pub epoch: usize,
    /// Absolute round at which the epoch started.
    pub start_round: usize,
    /// Rounds the epoch executed.
    pub rounds: usize,
    /// Deliveries the epoch's schedule attempted.
    pub attempted: usize,
    /// Deliveries that landed.
    pub delivered: usize,
    /// Deliveries lost to faults.
    pub lost: usize,
    /// Residual size after the epoch (missing pairs among survivors).
    pub residual_after: usize,
}

/// The outcome of a [`ResilientExecutor`] run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Number of processors.
    pub n: usize,
    /// Rounds of the base schedule (its makespan).
    pub baseline_rounds: usize,
    /// Total rounds executed across all epochs.
    pub total_rounds: usize,
    /// Per-epoch accounting (epoch 0 is the base run).
    pub epochs: Vec<EpochReport>,
    /// Deliveries attempted by repair epochs (0 when nothing was lost).
    pub retransmissions: usize,
    /// Total deliveries lost across all epochs.
    pub lost_deliveries: usize,
    /// Whether every recoverable pair was completed (the residual among
    /// survivors is empty apart from [`RecoveryReport::unrecoverable`]).
    pub recovered: bool,
    /// Pairs the planner proved unreachable (survivors disconnected from
    /// every holder of the message).
    pub unrecoverable: Vec<(u32, usize)>,
    /// Recoverable pairs still missing when the epoch budget ran out.
    pub unresolved: Vec<(u32, usize)>,
    /// Processors alive at the end of the run.
    pub survivors: usize,
    /// The combined transcript: the base schedule plus every repair epoch,
    /// placed at absolute rounds. Replaying it lossily under the same
    /// fault plan reproduces this report's final hold sets.
    pub transcript: Schedule,
    /// Every lost delivery, in execution order.
    pub lost_log: Vec<LostDelivery>,
}

impl RecoveryReport {
    /// Rounds of overhead the faults cost over the baseline schedule.
    pub fn overhead_rounds(&self) -> usize {
        self.total_rounds - self.baseline_rounds
    }

    /// The structured recovery artifact (`schema_version` 1).
    pub fn to_value(&self) -> Value {
        let epochs: Vec<Value> = self
            .epochs
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("epoch".to_string(), Value::from_u64(e.epoch as u64)),
                    (
                        "start_round".to_string(),
                        Value::from_u64(e.start_round as u64),
                    ),
                    ("rounds".to_string(), Value::from_u64(e.rounds as u64)),
                    ("attempted".to_string(), Value::from_u64(e.attempted as u64)),
                    ("delivered".to_string(), Value::from_u64(e.delivered as u64)),
                    ("lost".to_string(), Value::from_u64(e.lost as u64)),
                    (
                        "residual_after".to_string(),
                        Value::from_u64(e.residual_after as u64),
                    ),
                ])
            })
            .collect();
        let pair = |&(m, v): &(u32, usize)| {
            Value::Array(vec![Value::from_u64(m as u64), Value::from_u64(v as u64)])
        };
        Value::Object(vec![
            ("schema_version".to_string(), Value::from_u64(1)),
            ("kind".to_string(), Value::String("recovery".to_string())),
            ("n".to_string(), Value::from_u64(self.n as u64)),
            (
                "baseline_rounds".to_string(),
                Value::from_u64(self.baseline_rounds as u64),
            ),
            (
                "total_rounds".to_string(),
                Value::from_u64(self.total_rounds as u64),
            ),
            (
                "overhead_rounds".to_string(),
                Value::from_u64(self.overhead_rounds() as u64),
            ),
            (
                "retransmissions".to_string(),
                Value::from_u64(self.retransmissions as u64),
            ),
            (
                "lost_deliveries".to_string(),
                Value::from_u64(self.lost_deliveries as u64),
            ),
            ("recovered".to_string(), Value::Bool(self.recovered)),
            (
                "survivors".to_string(),
                Value::from_u64(self.survivors as u64),
            ),
            (
                "unrecoverable".to_string(),
                Value::Array(self.unrecoverable.iter().map(pair).collect()),
            ),
            (
                "unresolved".to_string(),
                Value::Array(self.unresolved.iter().map(pair).collect()),
            ),
            ("epochs".to_string(), Value::Array(epochs)),
        ])
    }

    /// A Chrome-trace view of the run: one lane per epoch (the base run
    /// and each repair pass as a complete event spanning its rounds), with
    /// an instant per lost delivery on the epoch it occurred in.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut trace = ChromeTrace::new();
        trace.process_name(0, "recovery (logical rounds)");
        for e in &self.epochs {
            let name = if e.epoch == 0 {
                "base schedule".to_string()
            } else {
                format!("repair epoch {}", e.epoch)
            };
            trace.thread_name(0, e.epoch as u64, &name);
            trace.complete(
                &name,
                "epoch",
                0,
                e.epoch as u64,
                e.start_round as f64 * ChromeTrace::ROUND_US,
                (e.rounds.max(1)) as f64 * ChromeTrace::ROUND_US,
                vec![
                    ("attempted".to_string(), Value::from_u64(e.attempted as u64)),
                    ("delivered".to_string(), Value::from_u64(e.delivered as u64)),
                    ("lost".to_string(), Value::from_u64(e.lost as u64)),
                    (
                        "residual_after".to_string(),
                        Value::from_u64(e.residual_after as u64),
                    ),
                ],
            );
        }
        for l in &self.lost_log {
            let epoch = self
                .epochs
                .iter()
                .rev()
                .find(|e| l.round >= e.start_round)
                .map_or(0, |e| e.epoch);
            trace.instant(
                &format!("lost m{} {}->{}", l.msg, l.from, l.to),
                "loss",
                0,
                epoch as u64,
                l.round as f64 * ChromeTrace::ROUND_US,
                vec![("cause".to_string(), Value::String(format!("{:?}", l.cause)))],
            );
        }
        trace
    }
}

/// Default repair-epoch budget of [`ResilientExecutor`].
pub const DEFAULT_MAX_EPOCHS: usize = 16;

/// Epoch-based self-healing execution of a gossip schedule under a fault
/// plan: run, detect the residual, replan with [`plan_completion`], re-run
/// — until the residual is gone or a bounded retry budget is spent.
///
/// # Examples
///
/// ```
/// use gossip_core::{GossipPlanner, ResilientExecutor};
/// use gossip_graph::Graph;
/// use gossip_model::FaultPlan;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
/// let faults = FaultPlan::new(7).with_loss_rate(0.2);
/// let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
///     .run()
///     .unwrap();
/// assert!(report.recovered);
/// ```
pub struct ResilientExecutor<'a> {
    g: &'a Graph,
    schedule: &'a Schedule,
    origins: &'a [usize],
    plan: &'a FaultPlan,
    model: CommModel,
    max_epochs: usize,
    recorder: &'a dyn Recorder,
}

impl<'a> ResilientExecutor<'a> {
    /// A resilient executor for `schedule` on `g` under `plan`, with the
    /// multicast model and the default epoch budget.
    pub fn new(
        g: &'a Graph,
        schedule: &'a Schedule,
        origins: &'a [usize],
        plan: &'a FaultPlan,
    ) -> ResilientExecutor<'a> {
        ResilientExecutor {
            g,
            schedule,
            origins,
            plan,
            model: CommModel::Multicast,
            max_epochs: DEFAULT_MAX_EPOCHS,
            recorder: &NoopRecorder,
        }
    }

    /// Caps the number of repair epochs (0 = run the base schedule only).
    pub fn max_epochs(mut self, budget: usize) -> ResilientExecutor<'a> {
        self.max_epochs = budget;
        self
    }

    /// Streams counters and spans into `recorder` (`recovery/lost`,
    /// `recovery/retransmissions`, `recovery/epochs`).
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> ResilientExecutor<'a> {
        self.recorder = recorder;
        self
    }

    /// Executes the base schedule and up to `max_epochs` repair passes.
    ///
    /// Errors only on structural problems (bad origin table, schedule/graph
    /// size mismatch, invalid fault plan, or a schedule that breaks model
    /// rules) — faults themselves never error.
    pub fn run(&self) -> Result<RecoveryReport, ModelError> {
        self.plan
            .validate(self.g.n())
            .map_err(|reason| ModelError::InvalidFaultPlan { reason })?;
        let _span = self.recorder.span("recover");
        // Zero-delta touches so a live scrape sees the whole recovery
        // counter family from the first round, not only after something
        // was lost.
        self.recorder.counter("recovery/lost", 0);
        self.recorder.counter("recovery/retransmissions", 0);
        self.recorder.counter("recovery/epochs", 0);
        // Execution goes through the bitset kernel: flatten each epoch's
        // schedule once, replay word-parallel; the oracle `Simulator` keeps
        // producing identical reports (the transcript-replay test relies on
        // that parity).
        let mut sim = SimKernel::with_origins(self.g, self.model, self.origins)?;
        let mut lost_log: Vec<LostDelivery> = Vec::new();
        let mut transcript = self.schedule.clone();
        transcript.trim();
        let baseline_rounds = self.schedule.makespan();

        let mut epochs = Vec::new();
        let mut retransmissions = 0usize;
        let mut unrecoverable: Vec<(u32, usize)> = Vec::new();

        let base_out = {
            let _e = self.recorder.span("epoch");
            self.epoch_start(0, 0);
            let flat = FlatSchedule::from_schedule(self.schedule);
            sim.run_lossy_recorded(&flat, self.plan, &mut lost_log, self.recorder)?
        };
        self.record_epoch(&mut epochs, 0, 0, self.schedule, &base_out, &sim);

        for epoch in 1..=self.max_epochs {
            if sim.residual_count(self.plan) == 0 {
                break;
            }
            let alive = self.plan.alive_at(self.g.n(), sim.time());
            let holds: Vec<BitSet> = sim.hold_bitsets();
            let completion = plan_completion(self.g, &holds, &alive);
            if completion.schedule.makespan() == 0 {
                // Nothing can make progress: the rest is unreachable.
                unrecoverable = completion.abandoned;
                break;
            }
            let start = sim.time();
            let out = {
                let _e = self.recorder.span("epoch");
                self.epoch_start(epoch, start);
                let flat = FlatSchedule::from_schedule(&completion.schedule);
                sim.run_lossy_recorded(&flat, self.plan, &mut lost_log, self.recorder)?
            };
            retransmissions += completion.schedule.stats().deliveries;
            transcript.merge(&completion.schedule.shifted(start, 0));
            self.record_epoch(&mut epochs, epoch, start, &completion.schedule, &out, &sim);
        }

        let final_residual = sim.residual(self.plan);
        let unresolved: Vec<(u32, usize)> = final_residual
            .iter()
            .filter(|p| !unrecoverable.contains(p))
            .copied()
            .collect();
        let survivors = self
            .plan
            .alive_at(self.g.n(), sim.time())
            .iter()
            .filter(|&&a| a)
            .count();

        self.recorder
            .gauge("recovery/total_rounds", sim.time() as f64);

        Ok(RecoveryReport {
            n: self.g.n(),
            baseline_rounds,
            total_rounds: sim.time(),
            epochs,
            retransmissions,
            lost_deliveries: lost_log.len(),
            recovered: unresolved.is_empty(),
            unrecoverable,
            unresolved,
            survivors,
            transcript,
            lost_log,
        })
    }

    /// Publishes the epoch-transition event before an epoch executes, so
    /// `/events` subscribers see the boundary ahead of its round stream.
    fn epoch_start(&self, epoch: usize, start_round: usize) {
        self.recorder.gauge("recovery/epoch_current", epoch as f64);
        self.recorder.event(
            "epoch_start",
            &[
                ("epoch", Value::from_u64(epoch as u64)),
                ("start_round", Value::from_u64(start_round as u64)),
            ],
        );
    }

    /// Books one finished epoch: the report row, the incremental
    /// `recovery/*` counters (per-epoch increments whose run totals equal
    /// the final report fields), the live `recovery/residual_pairs` gauge,
    /// and the `epoch_end` event.
    fn record_epoch(
        &self,
        epochs: &mut Vec<EpochReport>,
        epoch: usize,
        start_round: usize,
        schedule: &Schedule,
        out: &LossyOutcome,
        sim: &SimKernel<'_>,
    ) {
        let residual_after = sim.residual_count(self.plan);
        let attempted = schedule.stats().deliveries;
        self.recorder.counter("recovery/lost", out.lost as u64);
        self.recorder.counter("recovery/epochs", 1);
        if epoch > 0 {
            self.recorder
                .counter("recovery/retransmissions", attempted as u64);
        }
        self.recorder
            .gauge("recovery/residual_pairs", residual_after as f64);
        self.recorder.event(
            "epoch_end",
            &[
                ("epoch", Value::from_u64(epoch as u64)),
                ("start_round", Value::from_u64(start_round as u64)),
                ("rounds", Value::from_u64(out.rounds_executed as u64)),
                ("delivered", Value::from_u64(out.delivered as u64)),
                ("lost", Value::from_u64(out.lost as u64)),
                ("residual_after", Value::from_u64(residual_after as u64)),
            ],
        );
        epochs.push(EpochReport {
            epoch,
            start_round,
            rounds: out.rounds_executed,
            attempted,
            delivered: out.delivered,
            lost: out.lost,
            residual_after,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GossipPlanner;
    use gossip_model::Simulator;

    fn petersen() -> Graph {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
        ];
        Graph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn zero_fault_plan_adds_nothing() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::none();
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.total_rounds, plan.schedule.makespan());
        assert_eq!(report.overhead_rounds(), 0);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.lost_deliveries, 0);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.transcript, {
            let mut s = plan.schedule.clone();
            s.trim();
            s
        });
    }

    #[test]
    fn heavy_loss_is_healed() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::new(42).with_loss_rate(0.3);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        assert!(report.recovered, "{report:?}");
        assert!(report.lost_deliveries > 0);
        assert!(report.retransmissions > 0);
        assert!(report.epochs.len() > 1);
        assert!(report.unrecoverable.is_empty());
    }

    #[test]
    fn crash_excludes_dead_and_completes_survivors() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        // Vertex 9 dies immediately: its message never spreads (it is the
        // only holder), so pairs (9, *) are unrecoverable; all other
        // messages must still complete among the 9 survivors.
        let dead = 9usize;
        let faults = FaultPlan::new(3).with_crash(dead, 0);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        assert_eq!(report.survivors, 9);
        let dead_msg = plan
            .origin_of_message
            .iter()
            .position(|&o| o == dead)
            .unwrap() as u32;
        assert!(report.unresolved.is_empty());
        assert!(!report.unrecoverable.is_empty());
        assert!(report
            .unrecoverable
            .iter()
            .all(|&(m, v)| m == dead_msg && v != dead));
        assert_eq!(report.unrecoverable.len(), 9);
    }

    #[test]
    fn replaying_the_transcript_reproduces_the_outcome() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::new(11).with_loss_rate(0.25).with_crash(4, 6);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        // The combined transcript, replayed lossily under the same plan,
        // is accepted by the validating simulator and lands the same state.
        let mut sim =
            Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
        let mut lost = Vec::new();
        let out = sim
            .run_lossy(&report.transcript, &faults, &mut lost)
            .unwrap();
        assert_eq!(lost, report.lost_log);
        assert_eq!(
            out.complete_among_alive,
            report.recovered && report.unrecoverable.is_empty()
        );
        assert_eq!(
            sim.residual(&faults).len(),
            report.unresolved.len() + report.unrecoverable.len()
        );
    }

    #[test]
    fn epoch_budget_zero_reports_unresolved() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::new(42).with_loss_rate(0.5);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .max_epochs(0)
            .run()
            .unwrap();
        assert!(!report.recovered);
        assert!(!report.unresolved.is_empty());
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.retransmissions, 0);
    }

    #[test]
    fn planner_completes_a_simple_residual() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // Vertex 0 holds everything; the rest hold only their own message.
        let n_msgs = 4;
        let mut holds: Vec<BitSet> = (0..4)
            .map(|v| {
                let mut b = BitSet::new(n_msgs);
                b.insert(v);
                b
            })
            .collect();
        for m in 0..n_msgs {
            holds[0].insert(m);
        }
        let alive = vec![true; 4];
        let rp = plan_completion(&g, &holds, &alive);
        assert!(rp.abandoned.is_empty());
        // Validated end to end: replay over a simulator seeded with the
        // same holds is impossible directly, but simulating from origins
        // through planner rounds must obey all rules; spot-check the
        // schedule is conflict-free per round instead.
        for round in &rp.schedule.rounds {
            let senders: Vec<usize> = round.transmissions.iter().map(|t| t.from).collect();
            let mut s = senders.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), senders.len(), "duplicate sender in a round");
            let mut receivers: Vec<usize> = round
                .transmissions
                .iter()
                .flat_map(|t| t.to.iter().copied())
                .collect();
            let before = receivers.len();
            receivers.sort_unstable();
            receivers.dedup();
            assert_eq!(receivers.len(), before, "duplicate receiver in a round");
        }
    }

    #[test]
    fn planner_abandons_extinct_messages() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let n_msgs = 3;
        // Nobody holds message 2 (its origin crashed before forwarding).
        let holds: Vec<BitSet> = (0..3)
            .map(|v| {
                let mut b = BitSet::new(n_msgs);
                if v < 2 {
                    b.insert(v);
                }
                b
            })
            .collect();
        let alive = vec![true, true, false];
        let rp = plan_completion(&g, &holds, &alive);
        // Survivors 0 and 1 can trade m0/m1 but m2 is extinct.
        assert!(rp.abandoned.iter().all(|&(m, _)| m == 2));
        assert_eq!(rp.abandoned.len(), 2);
        assert!(rp.covered.len() == 2);
    }

    #[test]
    fn report_artifact_and_trace_shape() {
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::new(5).with_loss_rate(0.2);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        let v = report.to_value();
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["kind"].as_str(), Some("recovery"));
        assert_eq!(
            v["epochs"].as_array().map(Vec::len),
            Some(report.epochs.len())
        );
        let trace = report.chrome_trace();
        assert!(!trace.is_empty());
        let tv = trace.to_value();
        let completes = tv
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .count();
        assert_eq!(completes, report.epochs.len());
    }

    #[test]
    fn telemetry_counters_flow() {
        use gossip_telemetry::MetricsRecorder;
        let g = petersen();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::new(42).with_loss_rate(0.3);
        let rec = MetricsRecorder::new();
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .recorder(&rec)
            .run()
            .unwrap();
        assert_eq!(
            rec.counter_value("recovery/lost"),
            report.lost_deliveries as u64
        );
        assert_eq!(
            rec.counter_value("recovery/retransmissions"),
            report.retransmissions as u64
        );
        assert_eq!(
            rec.counter_value("recovery/epochs"),
            report.epochs.len() as u64
        );
    }

    #[test]
    fn identity_origin_line_under_outage_heals_after_window() {
        // A 5-line with the middle link down for the base run: recovery
        // must route everything once the outage lifts.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let base = plan.schedule.makespan();
        let faults = FaultPlan::new(0).with_outage(1, 2, 0, base);
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        assert!(report.recovered, "{report:?}");
        assert!(report.overhead_rounds() > 0);
    }
}
