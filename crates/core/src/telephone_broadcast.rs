//! Optimal broadcasting on trees under the *telephone* model — the
//! classical contrast to §2's one-round-per-level multicast broadcast.
//!
//! Under multicast, broadcast time is the source's eccentricity (§2);
//! under the telephone model a vertex must call its children one by one,
//! and the optimal order is the classical greedy: serve the child with the
//! largest subtree broadcast time first. The minimum broadcast time obeys
//! the DP
//!
//! `b(v) = max over i of (i + 1 + b(c_i))`,
//!
//! minimized by sorting children by `b` descending — a textbook exchange
//! argument. This module computes `b`, constructs the schedule, and proves
//! it optimal against brute force in tests.

use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};

/// Minimum telephone broadcast times from each vertex *downward* in its
/// subtree: `b[v]` = rounds to inform all of `v`'s subtree starting from
/// `v`.
pub fn telephone_broadcast_times(tree: &RootedTree) -> Vec<usize> {
    let n = tree.n();
    let mut b = vec![0usize; n];
    let mut order = tree.bfs_order();
    order.reverse();
    for v in order {
        let mut child_times: Vec<usize> = tree.children(v).iter().map(|&c| b[c as usize]).collect();
        child_times.sort_unstable_by(|a, c| c.cmp(a)); // descending
        b[v] = child_times
            .iter()
            .enumerate()
            .map(|(i, &bc)| i + 1 + bc)
            .max()
            .unwrap_or(0);
    }
    b
}

/// Builds the optimal telephone broadcast schedule for message 0 from the
/// tree's root: each informed vertex calls its children in descending
/// subtree-broadcast-time order. Returns the schedule and its makespan
/// (= `telephone_broadcast_times(tree)[root]`).
pub fn telephone_broadcast_schedule(tree: &RootedTree) -> (Schedule, usize) {
    let n = tree.n();
    let b = telephone_broadcast_times(tree);
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return (schedule, 0);
    }
    // BFS over (vertex, time informed): vertex informed at time t calls its
    // children at t, t+1, ... in greedy order.
    let mut queue = vec![(tree.root(), 0usize)];
    let mut head = 0;
    while head < queue.len() {
        let (v, informed_at) = queue[head];
        head += 1;
        let mut kids: Vec<usize> = tree.children(v).iter().map(|&c| c as usize).collect();
        kids.sort_by_key(|&c| std::cmp::Reverse(b[c]));
        for (i, &c) in kids.iter().enumerate() {
            let send_at = informed_at + i;
            schedule.add_transmission(send_at, Transmission::unicast(0, v, c));
            queue.push((c, send_at + 1));
        }
    }
    schedule.trim();
    let makespan = b[tree.root()];
    debug_assert_eq!(schedule.makespan(), makespan);
    (schedule, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::{CommModel, Simulator};

    fn verify(tree: &RootedTree) -> usize {
        let (s, time) = telephone_broadcast_schedule(tree);
        assert_eq!(s.makespan(), time);
        // Message 0 = root's message; fill other origins arbitrarily.
        let n = tree.n();
        let mut origins: Vec<usize> = (0..n).collect();
        origins.swap(0, tree.root());
        let g = tree.to_graph();
        let mut sim = Simulator::new(&g, CommModel::Telephone, &origins).unwrap();
        let o = sim.run(&s).unwrap();
        assert!(sim.everyone_holds(0));
        let _ = o;
        time
    }

    /// Brute-force optimal telephone broadcast time by BFS over informed
    /// sets (tiny trees only).
    fn brute_force(tree: &RootedTree) -> usize {
        use std::collections::{HashSet, VecDeque};
        let n = tree.n();
        let full = (1u32 << n) - 1;
        let start = 1u32 << tree.root();
        let mut dist = std::collections::HashMap::from([(start, 0usize)]);
        let mut q = VecDeque::from([start]);
        while let Some(set) = q.pop_front() {
            if set == full {
                return dist[&set];
            }
            let d = dist[&set];
            // Each informed vertex may call one uninformed tree-neighbour;
            // enumerate all matchings greedily via recursion.
            let informed: Vec<usize> = (0..n).filter(|&v| set >> v & 1 == 1).collect();
            let mut successors = HashSet::new();
            enumerate_calls(tree, &informed, 0, set, set, &mut successors);
            for next in successors {
                dist.entry(next).or_insert_with(|| {
                    q.push_back(next);
                    d + 1
                });
            }
        }
        unreachable!("broadcast always completes on a tree");
    }

    fn enumerate_calls(
        tree: &RootedTree,
        informed: &[usize],
        idx: usize,
        base: u32,
        acc: u32,
        out: &mut std::collections::HashSet<u32>,
    ) {
        if idx == informed.len() {
            out.insert(acc);
            return;
        }
        let v = informed[idx];
        // Option: v stays silent.
        enumerate_calls(tree, informed, idx + 1, base, acc, out);
        // Option: v calls an uninformed neighbour not yet called this round.
        let mut nbrs: Vec<usize> = tree.children(v).iter().map(|&c| c as usize).collect();
        if let Some(p) = tree.parent(v) {
            nbrs.push(p);
        }
        for w in nbrs {
            let bit = 1u32 << w;
            if base & bit == 0 && acc & bit == 0 {
                enumerate_calls(tree, informed, idx + 1, base, acc | bit, out);
            }
        }
    }

    #[test]
    fn greedy_matches_brute_force_on_small_trees() {
        let cases = vec![
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0]).unwrap(), // star
            RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2]).unwrap(), // chain
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1, 1, 2]).unwrap(), // mixed
            RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap(), // center root
        ];
        for tree in cases {
            assert_eq!(verify(&tree), brute_force(&tree), "{tree:?}");
        }
    }

    #[test]
    fn star_takes_degree_rounds() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(verify(&tree), 5);
    }

    #[test]
    fn chain_takes_length_rounds() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3]).unwrap();
        assert_eq!(verify(&tree), 4);
    }

    #[test]
    fn balanced_binary_is_logarithmicish() {
        // Complete binary tree with 15 vertices: b(root) = 2 + b(subtree)...
        let mut p = vec![0u32; 15];
        p[0] = NO_PARENT;
        for (v, slot) in p.iter_mut().enumerate().skip(1) {
            *slot = ((v - 1) / 2) as u32;
        }
        let tree = RootedTree::from_parents(0, &p).unwrap();
        let t = verify(&tree);
        // b(leaf)=0, level-2: 2, level-1: 4, root: 6.
        assert_eq!(t, 6);
        // Multicast broadcast on the same tree is just the height.
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn multicast_never_slower() {
        for tree in [
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 1, 1]).unwrap(),
            RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3, 4]).unwrap(),
        ] {
            let (_, tel) = telephone_broadcast_schedule(&tree);
            assert!(tree.height() as usize <= tel);
        }
    }

    #[test]
    fn singleton() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(telephone_broadcast_schedule(&t).1, 0);
    }
}
