//! Pipelined repeated gossiping: the paper's §4 throughput scenario,
//! quantified.
//!
//! "In many applications, one has to execute the gossiping algorithms a
//! large number of times" (§4). Running `k` gossip batches back-to-back
//! costs `k (n + r)` rounds; but a new batch can start *before* the
//! previous one finishes, as long as the overlaid schedules never violate
//! the one-send/one-receive rules. This module overlays `k` copies of the
//! ConcurrentUpDown schedule at a fixed **period** `S` (batch `i` shifted
//! by `i·S`, its messages renumbered into `i·n..(i+1)·n`), verifies the
//! overlay against the full model, and finds the smallest feasible period.
//!
//! The steady-state throughput is one gossip per `S` rounds; `S` can be
//! substantially below `n + r` because ConcurrentUpDown leaves every
//! vertex's receive calendar idle outside `[1, n + k_v]`. The hard floor is
//! `n - 1`: each processor must receive `n - 1` fresh messages per batch,
//! one per round.

use crate::concurrent::{concurrent_updown, tree_origins};
use gossip_graph::RootedTree;
use gossip_model::{CommModel, Schedule, Simulator};
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};

/// A pipelined multi-batch gossip schedule.
#[derive(Debug, Clone)]
pub struct PipelinedPlan {
    /// The combined schedule; batch `i`'s message `m` has id `i*n + m`.
    pub schedule: Schedule,
    /// The period between consecutive batch starts.
    pub period: usize,
    /// Number of batches.
    pub batches: usize,
    /// Origin table for the combined message space.
    pub origins: Vec<usize>,
}

impl PipelinedPlan {
    /// Amortized rounds per gossip at steady state.
    pub fn amortized_rounds(&self) -> f64 {
        self.schedule.makespan() as f64 / self.batches as f64
    }
}

/// Overlays `k` ConcurrentUpDown batches at the given `period` and checks
/// the combined schedule against the full communication model. Returns
/// `None` if the overlay conflicts (or does not complete).
pub fn pipelined_gossip(tree: &RootedTree, k: usize, period: usize) -> Option<PipelinedPlan> {
    pipelined_gossip_recorded(tree, k, period, &NoopRecorder)
}

/// [`pipelined_gossip`] with telemetry: a `pipelined` span with
/// `base_schedule` / `overlay` / `verify` child spans, a `pipeline/batches`
/// counter, and `pipeline/period` / `pipeline/amortized_rounds` gauges for
/// feasible overlays.
pub fn pipelined_gossip_recorded(
    tree: &RootedTree,
    k: usize,
    period: usize,
    recorder: &dyn Recorder,
) -> Option<PipelinedPlan> {
    assert!(k >= 1, "need at least one batch");
    let _span = recorder.span("pipelined");
    // Named `pipeline`, not `generate`: the base schedule below runs the
    // concurrent generator, which opens its own `generate` phase, and a
    // phase name must never nest under itself (it would double-count in
    // `Profile::named_total_ms`).
    let _phase = gossip_telemetry::profile::phase("pipeline");
    let n = tree.n();
    let (base, base_origins) = {
        let _s = recorder.span("base_schedule");
        let _p = gossip_telemetry::profile::phase("base_schedule");
        (concurrent_updown(tree), tree_origins(tree))
    };

    let (schedule, origins) = {
        let _s = recorder.span("overlay");
        let _p = gossip_telemetry::profile::phase("overlay");
        let mut schedule = Schedule::new(n);
        for batch in 0..k {
            schedule.merge(&base.shifted(batch * period, (batch * n) as u32));
        }
        schedule.trim();

        let mut origins = Vec::with_capacity(k * n);
        for _ in 0..k {
            origins.extend_from_slice(&base_origins);
        }
        (schedule, origins)
    };

    let outcome = {
        let _s = recorder.span("verify");
        let _p = gossip_telemetry::profile::phase("verify");
        let g = tree.to_graph();
        let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).ok()?;
        sim.run(&schedule).ok()?
    };
    let plan = outcome.complete.then_some(PipelinedPlan {
        schedule,
        period,
        batches: k,
        origins,
    });
    if recorder.enabled() {
        if let Some(p) = &plan {
            recorder.counter("pipeline/batches", p.batches as u64);
            recorder.gauge("pipeline/period", p.period as f64);
            recorder.gauge("pipeline/amortized_rounds", p.amortized_rounds());
        } else {
            recorder.counter("pipeline/infeasible_overlays", 1);
        }
    }
    plan
}

/// The smallest period at which `k` batches overlay conflict-free on
/// `tree`, found by linear scan from the information-theoretic floor
/// `n - 1` (0 for a single vertex).
///
/// The scan always terminates: at `period = n + r` the batches are fully
/// serialized.
pub fn min_pipeline_period(tree: &RootedTree, k: usize) -> usize {
    let n = tree.n();
    if n <= 1 {
        return 0;
    }
    let ceiling = n + tree.height() as usize;
    for period in (n - 1)..=ceiling {
        if pipelined_gossip(tree, k, period).is_some() {
            return period;
        }
    }
    ceiling
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::NO_PARENT;

    fn star(n: usize) -> RootedTree {
        let mut p = vec![0u32; n];
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    fn chain(n: usize) -> RootedTree {
        let mut p: Vec<u32> = (0..n as u32).map(|v| v.saturating_sub(1)).collect();
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn serialized_period_always_works() {
        for tree in [star(6), chain(5)] {
            let full = tree.n() + tree.height() as usize;
            let plan = pipelined_gossip(&tree, 3, full).expect("serial overlay is trivially valid");
            assert_eq!(plan.schedule.makespan(), 2 * full + full);
        }
    }

    #[test]
    fn min_period_at_least_information_floor() {
        for tree in [star(5), chain(4)] {
            let p = min_pipeline_period(&tree, 3);
            assert!(p >= tree.n() - 1, "{p}");
            assert!(p <= tree.n() + tree.height() as usize);
        }
    }

    #[test]
    fn pipelining_beats_serialization_somewhere() {
        // On a star the receive calendars leave the early rounds idle for
        // the next batch: period < n + r.
        let tree = star(8);
        let p = min_pipeline_period(&tree, 2);
        assert!(
            p < tree.n() + tree.height() as usize,
            "no overlap found (period {p})"
        );
    }

    #[test]
    fn overlay_conflicts_detected() {
        // Period 1 cannot work for n > 2: batch 2's sends collide.
        let tree = chain(4);
        assert!(pipelined_gossip(&tree, 2, 1).is_none());
    }

    #[test]
    fn amortized_rounds_decrease_with_batches() {
        let tree = star(6);
        let p = min_pipeline_period(&tree, 4);
        let plan = pipelined_gossip(&tree, 4, p).unwrap();
        let single = tree.n() + tree.height() as usize;
        assert!(plan.amortized_rounds() < single as f64);
    }

    #[test]
    fn message_ids_partition_by_batch() {
        let tree = chain(3);
        let full = tree.n() + tree.height() as usize;
        let plan = pipelined_gossip(&tree, 2, full).unwrap();
        assert_eq!(plan.origins.len(), 6);
        let max_msg = plan.schedule.iter().map(|(_, tx)| tx.msg).max().unwrap();
        assert!(max_msg < 6);
    }
}
