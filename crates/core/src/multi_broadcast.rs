//! Pipelined multi-message broadcast: one source, `k` messages, everyone.
//!
//! The bridge between §2's single-message broadcast (eccentricity rounds)
//! and full gossiping: a source holding `k` messages streams them down its
//! BFS tree back to back. Message `c` leaves the source at round `c`, every
//! informed vertex forwards each message the round after it arrives, and
//! the last message reaches the deepest vertex at `k - 1 + ecc(source)` —
//! the classic pipelining bound, optimal for this pattern (the source needs
//! `k` send rounds; the last message needs `ecc` hops).

use gossip_graph::{bfs, Graph};
use gossip_model::{Schedule, Transmission};

/// Builds the pipelined broadcast of messages `0..k` from `source` over
/// `g`'s BFS tree. Returns the schedule and its makespan
/// `k - 1 + eccentricity(source)` (0 when `k == 0` or `n == 1`).
///
/// # Panics
///
/// Panics if `g` is disconnected or `source` out of range.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::multi_broadcast_schedule;
///
/// let g = Graph::from_edges(5, &[(0,1),(1,2),(2,3),(3,4)]).unwrap();
/// let (s, time) = multi_broadcast_schedule(&g, 0, 3);
/// assert_eq!(time, 3 - 1 + 4); // k - 1 + ecc
/// assert_eq!(s.makespan(), time);
/// ```
pub fn multi_broadcast_schedule(g: &Graph, source: usize, k: usize) -> (Schedule, usize) {
    let n = g.n();
    assert!(source < n, "source out of range");
    let mut schedule = Schedule::new(n);
    if k == 0 || n <= 1 {
        return (schedule, 0);
    }
    let r = bfs(g, source);
    let ecc = r.eccentricity().expect("connected graph") as usize;

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if r.parent[v] != u32::MAX {
            children[r.parent[v] as usize].push(v);
        }
    }
    for (v, kids) in children.iter().enumerate() {
        if kids.is_empty() {
            continue;
        }
        let d = r.dist[v] as usize;
        // Message c arrives at depth d at time d + c and is forwarded the
        // same round (receive-before-send).
        for c in 0..k {
            schedule.add_transmission(d + c, Transmission::new(c as u32, v, kids.clone()));
        }
    }
    schedule.trim();
    (schedule, k - 1 + ecc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::{CommModel, Simulator};

    fn check(g: &Graph, source: usize, k: usize) -> usize {
        let (s, time) = multi_broadcast_schedule(g, source, k);
        assert_eq!(s.makespan(), time);
        // Origins: all k messages start at the source.
        let origins = vec![source; k];
        let mut sim = Simulator::with_origins(g, CommModel::Multicast, &origins).unwrap();
        sim.run(&s).unwrap();
        for m in 0..k {
            assert!(sim.everyone_holds(m), "message {m} incomplete");
        }
        time
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn pipelining_bound_on_paths() {
        assert_eq!(check(&path(6), 0, 1), 5);
        assert_eq!(check(&path(6), 0, 4), 4 - 1 + 5);
        assert_eq!(check(&path(7), 3, 5), 5 - 1 + 3);
    }

    #[test]
    fn star_from_center_and_leaf() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(check(&g, 0, 3), 3); // k - 1 + 1
        assert_eq!(check(&g, 1, 3), 4); // k - 1 + 2
    }

    #[test]
    fn k_zero_is_empty() {
        let (s, t) = multi_broadcast_schedule(&path(4), 0, 0);
        assert_eq!(t, 0);
        assert_eq!(s.makespan(), 0);
    }

    #[test]
    fn single_message_reduces_to_broadcast() {
        let g = path(8);
        let (s1, t1) = multi_broadcast_schedule(&g, 2, 1);
        let (s2, t2) = crate::broadcast::broadcast_schedule(&g, 2);
        assert_eq!(t1, t2);
        assert_eq!(s1.stats().deliveries, s2.stats().deliveries);
    }

    #[test]
    fn every_receiver_gets_each_message_once() {
        let g = path(5);
        let (s, _) = multi_broadcast_schedule(&g, 0, 3);
        let mut count = [[0usize; 3]; 5];
        for (_, tx) in s.iter() {
            for &d in &tx.to {
                count[d][tx.msg as usize] += 1;
            }
        }
        for (v, per_msg) in count.iter().enumerate().skip(1) {
            for (m, &c) in per_msg.iter().enumerate() {
                assert_eq!(c, 1, "vertex {v} message {m}");
            }
        }
    }
}
