//! Gossiping under the *(local) broadcasting* model — the third
//! communication regime of the paper's §1: "a processor may transmit a
//! message to all the adjacent processors", i.e. the destination set is
//! always the full neighbourhood.
//!
//! This is wireless radio without power control: every emission reaches all
//! neighbours, wanted or not, so two processors may transmit in the same
//! round only if their neighbourhoods are disjoint (otherwise some common
//! neighbour would receive twice). Scheduling becomes an iterated
//! maximum-weight independent-set problem in the *neighbourhood-conflict
//! graph*; this module uses a greedy most-new-information heuristic, which
//! completes on every connected graph and lets the experiments compare all
//! three models on equal footing.

use gossip_graph::Graph;
use gossip_model::{BitSet, Schedule, Transmission};

/// Upper bound factor on rounds before the greedy is declared stuck
/// (cannot happen on connected graphs; assertion guards regressions).
const ROUND_CAP_FACTOR: usize = 8;

/// Builds a gossip schedule legal under [`gossip_model::CommModel::Broadcast`]:
/// every transmission's destination set is the sender's entire
/// neighbourhood. Message ids equal origin vertex ids.
///
/// Greedy: each round, repeatedly pick the sender/message pair delivering
/// the most *new* information (ties: scarcer message, lower vertex id),
/// then exclude every sender whose neighbourhood intersects an already
/// chosen one.
///
/// # Panics
///
/// Panics if `g` is empty or disconnected.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::broadcast_model_gossip;
/// use gossip_model::{validate_gossip_schedule, identity_origins, CommModel};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let s = broadcast_model_gossip(&g);
/// let o = validate_gossip_schedule(&g, &s, &identity_origins(4), CommModel::Broadcast).unwrap();
/// assert!(o.complete);
/// ```
pub fn broadcast_model_gossip(g: &Graph) -> Schedule {
    let n = g.n();
    assert!(n > 0, "empty graph");
    assert!(gossip_graph::is_connected(g), "disconnected graph");
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }

    let mut hold: Vec<BitSet> = (0..n)
        .map(|p| {
            let mut b = BitSet::new(n);
            b.insert(p);
            b
        })
        .collect();
    let mut holders = vec![1usize; n];

    let cap = ROUND_CAP_FACTOR * n * n + 8;
    for t in 0..cap {
        if hold.iter().all(BitSet::is_full) {
            schedule.trim();
            return schedule;
        }
        // Candidate (gain, scarcity, sender, msg), best first.
        let mut blocked_recv = vec![false; n];
        let mut used_sender = vec![false; n];
        let mut any = false;
        // Deliveries land at t + 1: stage them so no same-round sender can
        // transmit information it only receives this round.
        let mut staged: Vec<(usize, u32)> = Vec::new();
        loop {
            let mut best: Option<(usize, usize, usize, u32)> = None; // gain, holders, sender, msg
            for v in 0..n {
                if used_sender[v] || g.degree(v) == 0 {
                    continue;
                }
                // A sender is feasible only if no neighbour is blocked.
                if g.neighbors(v).any(|w| blocked_recv[w]) {
                    continue;
                }
                for m in hold[v].iter() {
                    let gain = g.neighbors(v).filter(|&w| !hold[w].contains(m)).count();
                    if gain == 0 {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bg, bh, bv, bm)) => {
                            (
                                gain,
                                std::cmp::Reverse(holders[m]),
                                std::cmp::Reverse(v),
                                std::cmp::Reverse(m as u32),
                            ) > (
                                bg,
                                std::cmp::Reverse(bh),
                                std::cmp::Reverse(bv),
                                std::cmp::Reverse(bm),
                            )
                        }
                    };
                    if better {
                        best = Some((gain, holders[m], v, m as u32));
                    }
                }
            }
            let Some((_, _, v, m)) = best else { break };
            let dests: Vec<usize> = g.neighbors(v).collect();
            for &w in &dests {
                blocked_recv[w] = true;
                if !hold[w].contains(m as usize) {
                    staged.push((w, m));
                }
            }
            // Neighbours of any destination may no longer send (their
            // emission would hit a blocked receiver) — handled by the
            // feasibility check above; the sender itself is spent.
            used_sender[v] = true;
            schedule.add_transmission(t, Transmission::new(m, v, dests));
            any = true;
        }
        assert!(any, "broadcast-model greedy stalled (bug)");
        for (w, m) in staged {
            if hold[w].insert(m as usize) {
                holders[m as usize] += 1;
            }
        }
    }
    panic!("broadcast-model greedy exceeded the round cap (bug)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::{identity_origins, validate_gossip_schedule, CommModel};

    fn check(g: &Graph) -> usize {
        let s = broadcast_model_gossip(g);
        let o = validate_gossip_schedule(g, &s, &identity_origins(g.n()), CommModel::Broadcast)
            .unwrap();
        assert!(o.complete);
        s.makespan()
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn star(n: usize) -> Graph {
        Graph::from_edges(n, &(1..n).map(|v| (0, v)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn completes_on_basic_families() {
        for g in [path(6), star(7), path(2)] {
            let t = check(&g);
            assert!(t >= g.n() - 1, "below the universal bound");
        }
    }

    #[test]
    fn star_rounds_pair_center_with_one_leaf() {
        // N(center) = leaves and N(leaf) = {center} are disjoint, so a round
        // can hold the center plus exactly one leaf — never two leaves
        // (their neighbourhoods coincide at the center).
        let g = star(6);
        let s = broadcast_model_gossip(&g);
        for round in &s.rounds {
            assert!(round.transmissions.len() <= 2);
            let leaf_senders = round.transmissions.iter().filter(|t| t.from != 0).count();
            assert!(leaf_senders <= 1, "two leaves cannot share the center");
        }
    }

    #[test]
    fn path_allows_parallel_far_senders() {
        let g = path(12);
        let s = broadcast_model_gossip(&g);
        let parallel = s.rounds.iter().any(|r| r.transmissions.len() >= 2);
        assert!(
            parallel,
            "far-apart path vertices should broadcast concurrently"
        );
    }

    #[test]
    fn respects_universal_bound_and_beats_nothing_fundamental() {
        // On stars the broadcast model is as expressive as multicast (the
        // center's multicast IS its broadcast), so it may beat the generic
        // n + r; it can never beat the universal n - 1.
        for g in [path(8), star(8)] {
            let bm = check(&g);
            assert!(bm >= g.n() - 1);
        }
        // On paths the forced two-sided emissions cost it dearly vs the
        // unrestricted multicast pipeline.
        use crate::pipeline::GossipPlanner;
        let g = path(10);
        let bm = check(&g);
        let mc = GossipPlanner::new(&g).unwrap().plan().unwrap().makespan();
        assert!(bm >= mc, "broadcast {bm} beat multicast {mc} on a path");
    }

    #[test]
    fn ring_works() {
        let edges: Vec<_> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, &edges).unwrap();
        check(&g);
    }

    #[test]
    fn singleton() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(broadcast_model_gossip(&g).makespan(), 0);
    }
}
