//! Churn-resilient execution: topology changes mid-run with incremental
//! schedule repair.
//!
//! The paper's `n + r` schedule is computed once against a static graph.
//! [`ChurnExecutor`] lifts that assumption: a [`ChurnPlan`] scripts edge
//! adds/removes, node departures/rejoins, and link flaps at absolute
//! rounds, and the executor applies them *while the schedule runs* by
//! composing [`TreeMaintainer`] (atomic topology patches, lazy replans)
//! with the recovery loop's residual planner
//! ([`crate::recovery::plan_completion`]). On each churn batch it:
//!
//! 1. **advances** execution to the event round through the bitset kernel
//!    (resumed across topology patches via [`SimKernel::with_holds`] —
//!    knowledge persists, the graph does not);
//! 2. **patches** the live graph atomically — pure edge batches go through
//!    [`TreeMaintainer::batch`], all-or-nothing; node events are applied
//!    raw and drop the maintainer until the network is whole again;
//! 3. **classifies** which in-flight schedule entries the change
//!    invalidated: deliveries over now-dead edges and entries sent by or
//!    addressed to departed nodes (each surfaces as a `loss` telemetry
//!    event with cause `churn_invalidated`). Entries whose *upstream*
//!    feed was invalidated degrade at execution time into recorded
//!    `not_held` losses — the cascade is observable, not fatal;
//! 4. **repairs incrementally**: the surviving schedule is projected
//!    forward against the patched graph and only the residual it no
//!    longer covers is replanned as an appended tail — unless the
//!    spanning tree's **root component changed** (the root departed, or
//!    the present subgraph disconnected), in which case the remainder is
//!    replanned from scratch. Both costs are reported per batch
//!    ([`ChurnEpoch::repaired_entries`] vs
//!    [`ChurnEpoch::scratch_entries`]), which is the evidence for the
//!    "strictly fewer replanned entries" acceptance check.
//!
//! After the last event a **predictive bound guard** runs: if the
//! projected finish overruns `n + r` of the *final* graph, the remainder
//! is swapped for a fresh full plan, which meets the guarantee by
//! construction (Theorem 1 applied to the final topology). A bounded
//! greedy completion loop then mops up anything a cascade still left
//! missing. The whole run is summarized in a [`ChurnReport`].

use crate::maintenance::{EdgeOp, TreeMaintainer};
use crate::pipeline::{GossipPlan, GossipPlanner};
use crate::recovery::{plan_completion, DEFAULT_MAX_EPOCHS};
use gossip_graph::{Graph, GraphError};
use gossip_model::{
    BitSet, ChurnEvent, ChurnOp, ChurnPlan, CommModel, FaultPlan, FlatSchedule, LostDelivery,
    ModelError, Schedule, SimKernel, Transmission,
};
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt, Value};

/// Why a [`ChurnExecutor`] run failed. Topology changes themselves never
/// error — only a malformed plan, an unusable starting network, or a
/// repaired schedule that breaks model rules (a bug, surfaced loudly).
#[derive(Debug)]
pub enum ChurnError {
    /// The churn plan is malformed or inadmissible for the starting graph.
    Plan(String),
    /// Planning failed: the starting network is empty or disconnected.
    Graph(GraphError),
    /// Execution rejected a schedule (model-rule violation).
    Model(ModelError),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Plan(reason) => write!(f, "invalid churn plan: {reason}"),
            ChurnError::Graph(e) => write!(f, "churn planning failed: {e}"),
            ChurnError::Model(e) => write!(f, "churn execution failed: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<GraphError> for ChurnError {
    fn from(e: GraphError) -> ChurnError {
        ChurnError::Graph(e)
    }
}

impl From<ModelError> for ChurnError {
    fn from(e: ModelError) -> ChurnError {
        ChurnError::Model(e)
    }
}

/// How one churn batch was repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairDecision {
    /// Only the residual the surviving schedule no longer covers was
    /// replanned, appended as a tail.
    Incremental,
    /// The root component changed; the remainder was replanned from
    /// scratch.
    FullReplan,
}

impl RepairDecision {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            RepairDecision::Incremental => "incremental",
            RepairDecision::FullReplan => "full-replan",
        }
    }
}

/// What one churn batch (all events sharing a round) did to the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEpoch {
    /// Absolute round the batch fired at.
    pub round: usize,
    /// Events in the batch.
    pub events: usize,
    /// In-flight schedule entries the batch modified or dropped.
    pub invalidated_entries: usize,
    /// Individual deliveries invalidated (dest slots over dead edges or
    /// touching departed nodes).
    pub invalidated_deliveries: usize,
    /// Whether the repair was incremental or a full replan.
    pub decision: RepairDecision,
    /// Deliveries the chosen repair strategy actually planned.
    pub repaired_entries: usize,
    /// Deliveries a replan-from-scratch (discard the surviving schedule,
    /// replan everything still missing) would have planned at this
    /// instant — the comparison baseline for the incremental claim.
    pub scratch_entries: usize,
}

/// The outcome of a [`ChurnExecutor`] run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Number of processors.
    pub n: usize,
    /// Rounds of the original (pre-churn) schedule.
    pub baseline_rounds: usize,
    /// Total rounds executed.
    pub total_rounds: usize,
    /// Churn events applied.
    pub events_applied: usize,
    /// Per-batch accounting, in firing order.
    pub batches: Vec<ChurnEpoch>,
    /// Total in-flight entries invalidated across all batches.
    pub entries_invalidated: usize,
    /// Total deliveries invalidated across all batches.
    pub deliveries_invalidated: usize,
    /// Total deliveries planned by the chosen repair strategies.
    pub repaired_entries: usize,
    /// Total deliveries replan-from-scratch would have planned.
    pub scratch_entries: usize,
    /// Batches repaired incrementally.
    pub incremental_repairs: usize,
    /// Batches that fell back to a full replan.
    pub full_replans: usize,
    /// Whether the post-churn bound guard swapped in a fresh full plan.
    pub bound_fallback: bool,
    /// Deliveries the bound-guard fallback planned (0 when it never fired).
    pub fallback_entries: usize,
    /// Greedy completion epochs run after the schedule finished.
    pub completion_epochs: usize,
    /// Deliveries attempted by completion epochs.
    pub retransmissions: usize,
    /// The round the last churn event fired at (0 for a trivial plan).
    pub last_event_round: usize,
    /// Rounds executed after the last churn event.
    pub rounds_after_last_event: usize,
    /// Nodes present at the end.
    pub final_present: usize,
    /// Radius of the final present subgraph (`None` when it is
    /// disconnected).
    pub final_radius: Option<u32>,
    /// The paper guarantee on the final graph: `n_present + r_final`
    /// (`None` when disconnected at the end).
    pub final_bound: Option<usize>,
    /// Whether the run completed within [`ChurnReport::final_bound`]
    /// rounds of the last event (the proof-by-simulation acceptance
    /// check; `false` whenever the bound is undefined or the run did not
    /// recover).
    pub within_final_bound: bool,
    /// Whether every recoverable pair was delivered.
    pub recovered: bool,
    /// (message, vertex) pairs proven unreachable: the message is extinct
    /// among present nodes or they are cut off from every holder.
    pub unrecoverable: Vec<(u32, usize)>,
    /// Every executed transmission at its absolute round — for a trivial
    /// churn plan this is byte-identical to a plain
    /// [`crate::ResilientExecutor`] transcript of the same graph.
    pub transcript: Schedule,
    /// Cascade losses recorded during execution (`not_held` senders whose
    /// upstream feed was invalidated).
    pub lost_log: Vec<LostDelivery>,
}

impl ChurnReport {
    /// The structured churn artifact (`schema_version` 1, `kind`
    /// `"churn"`).
    pub fn to_value(&self) -> Value {
        let batches: Vec<Value> = self
            .batches
            .iter()
            .map(|b| {
                Value::Object(vec![
                    ("round".to_string(), Value::from_u64(b.round as u64)),
                    ("events".to_string(), Value::from_u64(b.events as u64)),
                    (
                        "invalidated_entries".to_string(),
                        Value::from_u64(b.invalidated_entries as u64),
                    ),
                    (
                        "invalidated_deliveries".to_string(),
                        Value::from_u64(b.invalidated_deliveries as u64),
                    ),
                    (
                        "decision".to_string(),
                        Value::String(b.decision.label().to_string()),
                    ),
                    (
                        "repaired_entries".to_string(),
                        Value::from_u64(b.repaired_entries as u64),
                    ),
                    (
                        "scratch_entries".to_string(),
                        Value::from_u64(b.scratch_entries as u64),
                    ),
                ])
            })
            .collect();
        let pair = |&(m, v): &(u32, usize)| {
            Value::Array(vec![Value::from_u64(m as u64), Value::from_u64(v as u64)])
        };
        Value::Object(vec![
            ("schema_version".to_string(), Value::from_u64(1)),
            ("kind".to_string(), Value::String("churn".to_string())),
            ("n".to_string(), Value::from_u64(self.n as u64)),
            (
                "baseline_rounds".to_string(),
                Value::from_u64(self.baseline_rounds as u64),
            ),
            (
                "total_rounds".to_string(),
                Value::from_u64(self.total_rounds as u64),
            ),
            (
                "events_applied".to_string(),
                Value::from_u64(self.events_applied as u64),
            ),
            (
                "entries_invalidated".to_string(),
                Value::from_u64(self.entries_invalidated as u64),
            ),
            (
                "deliveries_invalidated".to_string(),
                Value::from_u64(self.deliveries_invalidated as u64),
            ),
            (
                "repaired_entries".to_string(),
                Value::from_u64(self.repaired_entries as u64),
            ),
            (
                "scratch_entries".to_string(),
                Value::from_u64(self.scratch_entries as u64),
            ),
            (
                "incremental_repairs".to_string(),
                Value::from_u64(self.incremental_repairs as u64),
            ),
            (
                "full_replans".to_string(),
                Value::from_u64(self.full_replans as u64),
            ),
            (
                "bound_fallback".to_string(),
                Value::Bool(self.bound_fallback),
            ),
            (
                "fallback_entries".to_string(),
                Value::from_u64(self.fallback_entries as u64),
            ),
            (
                "completion_epochs".to_string(),
                Value::from_u64(self.completion_epochs as u64),
            ),
            (
                "retransmissions".to_string(),
                Value::from_u64(self.retransmissions as u64),
            ),
            (
                "last_event_round".to_string(),
                Value::from_u64(self.last_event_round as u64),
            ),
            (
                "rounds_after_last_event".to_string(),
                Value::from_u64(self.rounds_after_last_event as u64),
            ),
            (
                "final_present".to_string(),
                Value::from_u64(self.final_present as u64),
            ),
            (
                "final_radius".to_string(),
                self.final_radius
                    .map_or(Value::Null, |r| Value::from_u64(r as u64)),
            ),
            (
                "final_bound".to_string(),
                self.final_bound
                    .map_or(Value::Null, |b| Value::from_u64(b as u64)),
            ),
            (
                "within_final_bound".to_string(),
                Value::Bool(self.within_final_bound),
            ),
            ("recovered".to_string(), Value::Bool(self.recovered)),
            (
                "unrecoverable".to_string(),
                Value::Array(self.unrecoverable.iter().map(pair).collect()),
            ),
            ("batches".to_string(), Value::Array(batches)),
        ])
    }
}

/// Whether the present vertices form one connected component (departed
/// vertices are isolated by construction, so plain connectivity would
/// always fail once anyone left).
fn present_connected(graph: &Graph, present: &[bool]) -> bool {
    let n = graph.n();
    let total = present.iter().filter(|&&p| p).count();
    if total <= 1 {
        return true;
    }
    let start = present.iter().position(|&p| p).expect("total >= 1");
    let mut seen = vec![false; n];
    seen[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut reached = 1usize;
    while let Some(v) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if present[u] && !seen[u] {
                seen[u] = true;
                reached += 1;
                queue.push_back(u);
            }
        }
    }
    reached == total
}

/// Dry-runs the remaining schedule (rounds `from..`) over the patched
/// graph and returns the hold sets it would leave behind — deliveries
/// only land when the sender is present and holds the message, the
/// receiver is present, and the edge exists, mirroring lossy execution.
fn project_holds(
    graph: &Graph,
    present: &[bool],
    holds: &[BitSet],
    pending: &Schedule,
    from: usize,
) -> Vec<BitSet> {
    let mut projected = holds.to_vec();
    for round in pending.rounds.iter().skip(from) {
        for tx in &round.transmissions {
            let m = tx.msg as usize;
            if !present[tx.from] || !projected[tx.from].contains(m) {
                continue;
            }
            for &d in &tx.to {
                if present[d] && graph.has_edge(tx.from, d) {
                    projected[d].insert(m);
                }
            }
        }
    }
    projected
}

/// Missing (message, vertex) pairs among present vertices.
fn missing_among(present: &[bool], holds: &[BitSet], n_msgs: usize) -> usize {
    present
        .iter()
        .zip(holds)
        .filter(|(&p, _)| p)
        .map(|(_, h)| n_msgs - h.len())
        .sum()
}

/// Applies a churn batch to a raw graph + presence mask (the path for
/// batches the [`TreeMaintainer`] cannot hold: node events, or a network
/// churn has disconnected).
fn apply_batch_raw(
    graph: &Graph,
    present: &mut [bool],
    batch: &[ChurnEvent],
) -> Result<Graph, GraphError> {
    let n = graph.n();
    let mut edges: Vec<(usize, usize)> = graph.edges().collect();
    for e in batch {
        let (u, v) = (e.u as usize, e.v as usize);
        let key = (u.min(v), u.max(v));
        match e.op {
            ChurnOp::EdgeAdd => edges.push(key),
            ChurnOp::EdgeRemove => edges.retain(|&k| k != key),
            ChurnOp::NodeLeave => {
                present[u] = false;
                edges.retain(|&(a, b)| a != u && b != u);
            }
            ChurnOp::NodeJoin => present[u] = true,
            ChurnOp::LinkFlap => unreachable!("normalized events have no flaps"),
        }
    }
    Graph::from_edges(n, &edges)
}

/// Translates a fresh [`GossipPlan`]'s schedule (whose message labels
/// follow its own tree's origins) into the executor's original message
/// space, so the fallback full plan composes with accumulated knowledge.
fn remap_messages(fresh: &GossipPlan, origins: &[usize]) -> Schedule {
    let mut inv = vec![0u32; origins.len()];
    for (m, &p) in origins.iter().enumerate() {
        inv[p] = m as u32;
    }
    let mut out = Schedule::new(fresh.schedule.n);
    for (t, tx) in fresh.schedule.iter() {
        let ours = inv[fresh.origin_of_message[tx.msg as usize]];
        out.add_transmission(t, Transmission::new(ours, tx.from, tx.to.clone()));
    }
    out
}

/// Executes a gossip run while a [`ChurnPlan`] mutates the topology,
/// repairing the schedule incrementally (see the module docs for the
/// repair-vs-replan decision rule).
///
/// # Examples
///
/// ```
/// use gossip_core::ChurnExecutor;
/// use gossip_graph::Graph;
/// use gossip_model::{ChurnEvent, ChurnPlan};
///
/// let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
/// // A chord appears at round 2; an original ring edge dies at round 4.
/// let churn = ChurnPlan::new(1)
///     .with_event(ChurnEvent::edge_add(2, 0, 3))
///     .with_event(ChurnEvent::edge_remove(4, 1, 2));
/// let report = ChurnExecutor::new(&g, &churn).run().unwrap();
/// assert!(report.recovered);
/// assert!(report.repaired_entries <= report.scratch_entries);
/// ```
pub struct ChurnExecutor<'a> {
    g: &'a Graph,
    churn: &'a ChurnPlan,
    model: CommModel,
    max_epochs: usize,
    recorder: &'a dyn Recorder,
}

impl<'a> ChurnExecutor<'a> {
    /// A churn executor for `churn` applied to a run on `g`, with the
    /// multicast model and the default completion-epoch budget.
    pub fn new(g: &'a Graph, churn: &'a ChurnPlan) -> ChurnExecutor<'a> {
        ChurnExecutor {
            g,
            churn,
            model: CommModel::Multicast,
            max_epochs: DEFAULT_MAX_EPOCHS,
            recorder: &NoopRecorder,
        }
    }

    /// Caps the number of greedy completion epochs run after the repaired
    /// schedule finishes.
    pub fn max_epochs(mut self, budget: usize) -> ChurnExecutor<'a> {
        self.max_epochs = budget;
        self
    }

    /// Streams telemetry into `recorder` (`churn/*` counters, `churn`
    /// events for every applied change, `loss` events with cause
    /// `churn_invalidated` for every invalidated delivery, and the usual
    /// per-round `exec/*` stream).
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> ChurnExecutor<'a> {
        self.recorder = recorder;
        self
    }

    /// Plans on the starting graph, then executes while applying the
    /// churn plan, repairing incrementally, and completing greedily.
    pub fn run(&self) -> Result<ChurnReport, ChurnError> {
        self.churn
            .validate_against(self.g)
            .map_err(ChurnError::Plan)?;
        let _span = self.recorder.span("churn");
        // Zero-delta touches so a live scrape sees the churn counter
        // family from round 0.
        self.recorder.counter("churn/events", 0);
        self.recorder.counter("churn/invalidated", 0);
        self.recorder.counter("churn/replanned", 0);

        let n = self.g.n();
        let mut maintainer = Some(TreeMaintainer::new(self.g.clone())?);
        let plan0 = maintainer.as_ref().expect("just built").plan().clone();
        let origins = plan0.origin_of_message.clone();
        let n_msgs = origins.len();
        let baseline_rounds = plan0.schedule.makespan();

        let mut graph = self.g.clone();
        let mut present = vec![true; n];
        let mut holds: Vec<BitSet> = vec![BitSet::new(n_msgs); n];
        for (m, &p) in origins.iter().enumerate() {
            holds[p].insert(m);
        }
        let mut pending = plan0.schedule.clone();
        pending.trim();
        let mut transcript = Schedule::new(n);
        let mut lost_log: Vec<LostDelivery> = Vec::new();
        let mut time = 0usize;
        let mut root = plan0.tree.root();

        // Group the normalized (flap-expanded, round-sorted) events into
        // per-round batches, applied atomically between rounds.
        let mut batches: Vec<(usize, Vec<ChurnEvent>)> = Vec::new();
        for e in self.churn.normalized_events() {
            match batches.last_mut() {
                Some((r, evs)) if *r == e.round as usize => evs.push(e),
                _ => batches.push((e.round as usize, vec![e])),
            }
        }

        let mut epochs: Vec<ChurnEpoch> = Vec::new();
        let mut entries_invalidated = 0usize;
        let mut deliveries_invalidated = 0usize;
        let mut repaired_total = 0usize;
        let mut scratch_total = 0usize;
        let mut incremental_repairs = 0usize;
        let mut full_replans = 0usize;

        for (te, batch) in &batches {
            let te = *te;
            time = self.advance(
                &graph,
                &mut holds,
                &mut pending,
                &mut transcript,
                &mut lost_log,
                time,
                te,
            )?;

            for e in batch {
                self.recorder.counter("churn/events", 1);
                self.recorder.event(
                    "churn",
                    &[
                        ("round", Value::from_u64(te as u64)),
                        ("op", Value::String(e.op.label().to_string())),
                        ("u", Value::from_u64(e.u as u64)),
                        ("v", Value::from_u64(e.v as u64)),
                    ],
                );
            }

            // --- patch the topology atomically
            let edge_only = batch
                .iter()
                .all(|e| matches!(e.op, ChurnOp::EdgeAdd | ChurnOp::EdgeRemove));
            let mut root_departed = false;
            if edge_only && maintainer.is_some() {
                let ops: Vec<EdgeOp> = batch
                    .iter()
                    .map(|e| match e.op {
                        ChurnOp::EdgeAdd => EdgeOp::Insert(e.u as usize, e.v as usize),
                        ChurnOp::EdgeRemove => EdgeOp::Remove(e.u as usize, e.v as usize),
                        _ => unreachable!("edge_only batch"),
                    })
                    .collect();
                match maintainer.as_mut().expect("checked is_some").batch(&ops) {
                    Ok(_) => graph = maintainer.as_ref().expect("still some").graph().clone(),
                    Err(GraphError::Disconnected) => {
                        // The maintainer refuses to hold a disconnected
                        // network; track the graph raw until churn
                        // reconnects it.
                        maintainer = None;
                        graph = apply_batch_raw(&graph, &mut present, batch)?;
                    }
                    Err(e) => return Err(ChurnError::Graph(e)),
                }
            } else {
                maintainer = None;
                root_departed = batch
                    .iter()
                    .any(|e| e.op == ChurnOp::NodeLeave && e.u as usize == root);
                graph = apply_batch_raw(&graph, &mut present, batch)?;
            }

            // --- classify invalidated in-flight entries
            let (inv_e, inv_d) = self.invalidate_pending(&mut pending, time, &graph, &present);
            entries_invalidated += inv_e;
            deliveries_invalidated += inv_d;

            // --- repair
            let connected = present_connected(&graph, &present);
            let scratch_plan = plan_completion(&graph, &holds, &present);
            let scratch = scratch_plan.schedule.stats().deliveries;
            let (decision, repaired) = if root_departed || !connected {
                // The root component changed: replan the world from
                // current knowledge, discarding the surviving schedule.
                for round in pending.rounds.iter_mut().skip(time) {
                    round.transmissions.clear();
                }
                pending.merge(&scratch_plan.schedule.shifted(time, 0));
                full_replans += 1;
                if !present.iter().all(|&p| p) {
                    root = present.iter().position(|&p| p).unwrap_or(root);
                }
                if connected && present.iter().all(|&p| p) && maintainer.is_none() {
                    // The network is whole again: re-adopt lazy
                    // maintenance (and its root) for future batches.
                    maintainer = TreeMaintainer::new(graph.clone()).ok();
                    if let Some(m) = &maintainer {
                        root = m.plan().tree.root();
                    }
                }
                (RepairDecision::FullReplan, scratch)
            } else {
                // Incremental: keep every surviving entry, project what
                // they still deliver on the patched graph, and plan only
                // the uncovered residual as a tail.
                let projected = project_holds(&graph, &present, &holds, &pending, time);
                let completion = plan_completion(&graph, &projected, &present);
                let tail = completion.schedule.stats().deliveries;
                if tail > 0 {
                    let start = pending.makespan().max(time);
                    pending.merge(&completion.schedule.shifted(start, 0));
                }
                incremental_repairs += 1;
                (RepairDecision::Incremental, tail)
            };
            repaired_total += repaired;
            scratch_total += scratch;
            self.recorder.counter("churn/replanned", repaired as u64);
            self.recorder
                .gauge("churn/epoch_current", (epochs.len() + 1) as f64);
            epochs.push(ChurnEpoch {
                round: te,
                events: batch.len(),
                invalidated_entries: inv_e,
                invalidated_deliveries: inv_d,
                decision,
                repaired_entries: repaired,
                scratch_entries: scratch,
            });
        }

        // --- post-churn bound guard
        let last_event_round = batches.last().map_or(0, |(r, _)| *r);
        let final_present = present.iter().filter(|&&p| p).count();
        let final_radius = if !present_connected(&graph, &present) {
            None
        } else if final_present == n {
            gossip_graph::radius(&graph).ok()
        } else if final_present <= 1 {
            Some(0)
        } else {
            let keep: Vec<usize> = (0..n).filter(|&v| present[v]).collect();
            graph
                .induced_subgraph(&keep)
                .ok()
                .and_then(|sub| gossip_graph::radius(&sub).ok())
        };
        let final_bound = final_radius.map(|r| {
            if final_present <= 1 {
                0
            } else {
                final_present + r as usize
            }
        });
        let mut bound_fallback = false;
        let mut fallback_entries = 0usize;
        if let (false, Some(bound), true) =
            (self.churn.is_trivial(), final_bound, final_present == n)
        {
            let projected = project_holds(&graph, &present, &holds, &pending, time);
            let projected_missing = missing_among(&present, &projected, n_msgs);
            let projected_end = pending.makespan().max(time);
            if projected_missing > 0 || projected_end.saturating_sub(last_event_round) > bound {
                // The repaired schedule would overrun (or undershoot) the
                // final graph's n + r guarantee; a fresh full plan meets
                // it by construction, because origins still hold their
                // own messages.
                let fresh = match &maintainer {
                    Some(m) => m.plan().clone(),
                    None => GossipPlanner::new(&graph)?.plan()?,
                };
                let remapped = remap_messages(&fresh, &origins);
                for round in pending.rounds.iter_mut().skip(time) {
                    round.transmissions.clear();
                }
                fallback_entries = remapped.stats().deliveries;
                pending.merge(&remapped.shifted(time, 0));
                self.recorder
                    .counter("churn/replanned", fallback_entries as u64);
                bound_fallback = true;
            }
        }

        // --- run the remainder
        let end = pending.makespan().max(time);
        time = self.advance(
            &graph,
            &mut holds,
            &mut pending,
            &mut transcript,
            &mut lost_log,
            time,
            end,
        )?;

        // --- greedy completion epochs for anything a cascade left behind
        let mut completion_epochs = 0usize;
        let mut retransmissions = 0usize;
        let mut unrecoverable: Vec<(u32, usize)> = Vec::new();
        for _ in 0..self.max_epochs {
            if missing_among(&present, &holds, n_msgs) == 0 {
                break;
            }
            let completion = plan_completion(&graph, &holds, &present);
            if completion.schedule.makespan() == 0 {
                unrecoverable = completion.abandoned;
                break;
            }
            retransmissions += completion.schedule.stats().deliveries;
            pending.merge(&completion.schedule.shifted(time, 0));
            let end = pending.makespan().max(time);
            time = self.advance(
                &graph,
                &mut holds,
                &mut pending,
                &mut transcript,
                &mut lost_log,
                time,
                end,
            )?;
            completion_epochs += 1;
        }

        let missing = missing_among(&present, &holds, n_msgs);
        let recovered = missing == unrecoverable.len();
        let rounds_after_last_event = time.saturating_sub(last_event_round);
        let within_final_bound =
            recovered && final_bound.is_some_and(|b| rounds_after_last_event <= b);
        self.recorder.gauge("churn/total_rounds", time as f64);

        Ok(ChurnReport {
            n,
            baseline_rounds,
            total_rounds: time,
            events_applied: batches.iter().map(|(_, b)| b.len()).sum(),
            batches: epochs,
            entries_invalidated,
            deliveries_invalidated,
            repaired_entries: repaired_total,
            scratch_entries: scratch_total,
            incremental_repairs,
            full_replans,
            bound_fallback,
            fallback_entries,
            completion_epochs,
            retransmissions,
            last_event_round,
            rounds_after_last_event,
            final_present,
            final_radius,
            final_bound,
            within_final_bound,
            recovered,
            unrecoverable,
            transcript,
            lost_log,
        })
    }

    /// Runs schedule rounds `[from, to)` on the current graph, with the
    /// same per-round telemetry stream as the kernel's recorded runners.
    /// The kernel is rebuilt from the live hold sets each segment (the
    /// graph may have changed), and rounds before `from` — cleared after
    /// earlier segments — are stepped silently so every kernel clock,
    /// event, and flight record carries the **absolute** round index.
    /// Executed entries move from `pending` into `transcript`. Returns
    /// the new absolute time (`to`), jumping any unscheduled stretch.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        graph: &Graph,
        holds: &mut Vec<BitSet>,
        pending: &mut Schedule,
        transcript: &mut Schedule,
        lost_log: &mut Vec<LostDelivery>,
        from: usize,
        to: usize,
    ) -> Result<usize, ChurnError> {
        if to <= from {
            return Ok(from);
        }
        let exec_end = pending.makespan().min(to);
        if exec_end <= from {
            return Ok(to);
        }
        let flat = FlatSchedule::from_schedule(pending);
        let mut sim = SimKernel::with_holds(graph, self.model, holds)?;
        let faults = FaultPlan::none();
        let rec = self.recorder;
        let enabled = rec.enabled();
        let wants_tx = enabled && rec.wants_transmissions();
        for r in 0..exec_end {
            if r < from {
                sim.step_round_lossy(&flat, r, &faults, lost_log)?;
                continue;
            }
            let t = sim.time();
            if enabled {
                rec.event("round_start", &[("round", Value::from_u64(t as u64))]);
                if wants_tx {
                    for i in flat.round_range(r) {
                        rec.transmission(t, flat.msg_of(i), flat.from_of(i), flat.dests_of(i));
                    }
                }
            }
            let lost_before = lost_log.len();
            // Lossy stepping (under the empty fault plan) instead of
            // strict: entries whose upstream feed was invalidated by
            // churn degrade into recorded `not_held` losses the
            // completion loop covers, rather than aborting the run.
            let d = sim.step_round_lossy(&flat, r, &faults, lost_log)?;
            if enabled {
                for l in &lost_log[lost_before..] {
                    rec.counter(&format!("exec/lost/{}", l.cause.label()), 1);
                    rec.event(
                        "loss",
                        &[
                            ("round", Value::from_u64(l.round as u64)),
                            ("msg", Value::from_u64(l.msg as u64)),
                            ("from", Value::from_u64(l.from as u64)),
                            ("to", Value::from_u64(l.to as u64)),
                            ("cause", Value::String(l.cause.label().to_string())),
                        ],
                    );
                }
                let lost_now = (lost_log.len() - lost_before) as u64;
                rec.counter("exec/deliveries", d as u64);
                rec.counter("exec/losses", lost_now);
                rec.gauge("round_current", sim.time() as f64);
                rec.gauge("known_pairs", sim.known_pairs() as f64);
                rec.event(
                    "round_end",
                    &[
                        ("round", Value::from_u64(t as u64)),
                        ("delivered", Value::from_u64(d as u64)),
                        ("lost", Value::from_u64(lost_now)),
                        ("known_pairs", Value::from_u64(sim.known_pairs() as u64)),
                    ],
                );
            }
        }
        *holds = sim.hold_bitsets();
        for r in from..exec_end {
            for tx in pending.rounds[r].transmissions.drain(..) {
                transcript.add_transmission(r, tx);
            }
        }
        Ok(to)
    }

    /// Drops every pending delivery the patched topology can no longer
    /// carry — dead edge, departed sender, departed receiver — emitting a
    /// `loss` event with cause `churn_invalidated` per delivery. Returns
    /// (entries touched, deliveries dropped).
    fn invalidate_pending(
        &self,
        pending: &mut Schedule,
        time: usize,
        graph: &Graph,
        present: &[bool],
    ) -> (usize, usize) {
        let mut entries = 0usize;
        let mut deliveries = 0usize;
        for (r, round) in pending.rounds.iter_mut().enumerate().skip(time) {
            let txs = std::mem::take(&mut round.transmissions);
            for mut tx in txs {
                let from = tx.from;
                let mut dropped: Vec<usize> = Vec::new();
                if present[from] {
                    tx.to.retain(|&d| {
                        let ok = present[d] && graph.has_edge(from, d);
                        if !ok {
                            dropped.push(d);
                        }
                        ok
                    });
                } else {
                    dropped = std::mem::take(&mut tx.to);
                }
                if !dropped.is_empty() {
                    entries += 1;
                    deliveries += dropped.len();
                    self.recorder
                        .counter("churn/invalidated", dropped.len() as u64);
                    for d in &dropped {
                        self.recorder.event(
                            "loss",
                            &[
                                ("round", Value::from_u64(r as u64)),
                                ("msg", Value::from_u64(tx.msg as u64)),
                                ("from", Value::from_u64(from as u64)),
                                ("to", Value::from_u64(*d as u64)),
                                ("cause", Value::String("churn_invalidated".to_string())),
                            ],
                        );
                    }
                }
                if !tx.to.is_empty() {
                    round.transmissions.push(tx);
                }
            }
        }
        (entries, deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::ResilientExecutor;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn petersen() -> Graph {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
        ];
        Graph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn trivial_plan_matches_resilient_executor_byte_for_byte() {
        let g = petersen();
        let churn = ChurnPlan::none();
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let faults = FaultPlan::none();
        let baseline = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
            .run()
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.transcript, baseline.transcript);
        assert_eq!(report.total_rounds, baseline.total_rounds);
        assert_eq!(report.events_applied, 0);
        assert_eq!(report.entries_invalidated, 0);
        assert_eq!(report.repaired_entries, 0);
        assert!(report.within_final_bound);
        assert!(!report.bound_fallback);
    }

    #[test]
    fn mid_run_edge_removal_heals_incrementally() {
        let g = ring(8);
        // Kill a ring edge a third of the way in; the generator promises
        // connectivity, and the repair must be incremental (root intact).
        let churn = ChurnPlan::new(0).with_event(ChurnEvent::edge_remove(3, 2, 3));
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert!(report.recovered, "{report:?}");
        assert!(report.unrecoverable.is_empty());
        assert_eq!(report.full_replans, 0);
        assert_eq!(report.incremental_repairs, 1);
        assert!(report.within_final_bound, "{report:?}");
    }

    #[test]
    fn generated_churn_heals_with_fewer_entries_than_scratch() {
        let g = petersen();
        let churn = ChurnPlan::generate(&g, 0.4, 11, 10);
        assert!(!churn.is_trivial());
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert!(report.recovered, "{report:?}");
        assert!(report.unrecoverable.is_empty());
        assert!(
            report.repaired_entries < report.scratch_entries,
            "incremental {} vs scratch {}",
            report.repaired_entries,
            report.scratch_entries
        );
        assert!(report.within_final_bound, "{report:?}");
    }

    #[test]
    fn node_departure_of_root_forces_full_replan() {
        let g = petersen();
        let plan0 = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let root = plan0.tree.root();
        let churn = ChurnPlan::new(0).with_event(ChurnEvent::node_leave(2, root));
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert_eq!(report.full_replans, 1);
        assert_eq!(report.final_present, 9);
        // The root's own message survives only if it was relayed before
        // round 2; either way every recoverable pair completes.
        assert!(report.recovered, "{report:?}");
    }

    #[test]
    fn departed_nodes_orphan_their_unsent_messages() {
        // A star: the center departs immediately, before relaying
        // anything. Every leaf keeps only its own message; the center's
        // message (and everyone else's, for the leaves) is unreachable.
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let churn = ChurnPlan::new(0).with_event(ChurnEvent::node_leave(1, 0));
        let report = ChurnExecutor::new(&star, &churn).run().unwrap();
        // Every *recoverable* pair completes (there are none left to
        // move), but a non-empty set is proven unreachable and the final
        // graph is disconnected, so the n + r bound is undefined.
        assert!(report.recovered);
        assert!(!report.unrecoverable.is_empty());
        assert_eq!(report.final_radius, None);
        assert_eq!(report.final_bound, None);
        assert!(!report.within_final_bound);
    }

    #[test]
    fn flap_heals_and_reports_batches() {
        let g = ring(6);
        let churn = ChurnPlan::new(0).with_event(ChurnEvent::link_flap(2, 1, 2, 2));
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert!(report.recovered, "{report:?}");
        assert_eq!(report.events_applied, 2, "flap normalizes to remove+add");
        assert_eq!(report.batches.len(), 2);
        assert!(report.within_final_bound, "{report:?}");
    }

    #[test]
    fn leave_then_rejoin_completes_for_everyone_present_at_end() {
        let g = petersen();
        let plan0 = GossipPlanner::new(&g).unwrap().plan().unwrap();
        // A non-root leaf departs at round 1 and rejoins (same edges) at
        // round 4: it missed the early rounds, so the completion loop
        // must backfill it.
        let root = plan0.tree.root();
        let v = (0..10).find(|&v| v != root).unwrap();
        let nbrs: Vec<usize> = g.neighbors(v).collect();
        let mut churn = ChurnPlan::new(0)
            .with_event(ChurnEvent::node_leave(1, v))
            .with_event(ChurnEvent::node_join(4, v));
        for &u in &nbrs {
            churn = churn.with_event(ChurnEvent::edge_add(4, v, u));
        }
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert!(report.recovered, "{report:?}");
        assert_eq!(report.final_present, 10);
    }

    #[test]
    fn transcript_replays_to_completion_on_final_graph_when_static_suffices() {
        // When churn only *adds* edges, the final graph carries every
        // transcript entry: replaying the transcript on it must complete.
        let g = ring(8);
        let churn = ChurnPlan::new(0)
            .with_event(ChurnEvent::edge_add(2, 0, 4))
            .with_event(ChurnEvent::edge_add(5, 1, 5));
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        assert!(report.recovered);
        let final_graph = g.with_edge(0, 4).unwrap().with_edge(1, 5).unwrap();
        let plan0 = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let mut sim =
            SimKernel::new(&final_graph, CommModel::Multicast, &plan0.origin_of_message).unwrap();
        let mut lost = Vec::new();
        sim.run_lossy(
            &FlatSchedule::from_schedule(&report.transcript),
            &FaultPlan::none(),
            &mut lost,
        )
        .unwrap();
        assert!(sim.gossip_complete());
    }

    #[test]
    fn report_value_shape() {
        let g = ring(6);
        let churn = ChurnPlan::new(3).with_event(ChurnEvent::edge_remove(2, 0, 1));
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        let v = report.to_value();
        let get = |key: &str| match &v {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key}")),
            _ => panic!("not an object"),
        };
        assert_eq!(get("kind"), Value::String("churn".to_string()));
        assert_eq!(get("schema_version"), Value::from_u64(1));
        assert_eq!(get("events_applied"), Value::from_u64(1));
        assert!(matches!(get("batches"), Value::Array(b) if b.len() == 1));
        assert!(matches!(get("within_final_bound"), Value::Bool(_)));
    }

    #[test]
    fn telemetry_counters_flow() {
        use gossip_telemetry::MetricsRecorder;
        let g = ring(8);
        let churn = ChurnPlan::new(0).with_event(ChurnEvent::edge_remove(3, 2, 3));
        let rec = MetricsRecorder::new();
        let report = ChurnExecutor::new(&g, &churn).recorder(&rec).run().unwrap();
        assert!(report.recovered);
        assert_eq!(rec.counter_value("churn/events"), 1);
        assert_eq!(
            rec.counter_value("churn/invalidated"),
            report.deliveries_invalidated as u64
        );
        assert_eq!(
            rec.counter_value("churn/replanned"),
            (report.repaired_entries + report.fallback_entries) as u64
        );
        assert!(rec.events_emitted() > 0);
    }
}
