//! Lazy spanning-tree maintenance under topology changes (the paper's §4
//! operating assumption, made concrete).
//!
//! "The construction of the tree is performed only when there is a change
//! in the network, which we assume remains constant for long periods of
//! time." This module implements the bookkeeping a long-running deployment
//! needs: hold the current plan, apply edge insertions/removals, and
//! recompute the minimum-depth tree — with its `O(mn)` cost — only when the
//! change actually invalidates or degrades the plan:
//!
//! - removing a **non-tree** edge never invalidates the tree, and can only
//!   increase the radius, so the current tree (height = old radius ≤ new
//!   radius) stays optimal — no recompute;
//! - removing a **tree** edge forces a rebuild (the tree no longer spans);
//! - inserting an edge keeps the tree valid but may shrink the radius; the
//!   maintainer recomputes lazily and keeps the old plan when the radius is
//!   unchanged.

use crate::pipeline::{GossipPlan, GossipPlanner};
use gossip_graph::{Graph, GraphError};

/// What a topology change did to the maintained plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// The existing tree and schedule remain in force.
    Kept,
    /// The plan was rebuilt (tree construction re-ran).
    Rebuilt,
}

/// One edge operation in a [`TreeMaintainer::batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert edge `(u, v)`.
    Insert(usize, usize),
    /// Remove edge `(u, v)`.
    Remove(usize, usize),
}

/// A long-lived planner that owns the evolving network and its current
/// gossip plan.
#[derive(Debug, Clone)]
pub struct TreeMaintainer {
    graph: Graph,
    plan: GossipPlan,
    rebuilds: usize,
    #[cfg(test)]
    fail_next_rebuild: bool,
}

impl TreeMaintainer {
    /// Plans on the initial network.
    pub fn new(graph: Graph) -> Result<Self, GraphError> {
        let plan = GossipPlanner::new(&graph)?.plan()?;
        Ok(TreeMaintainer {
            graph,
            plan,
            rebuilds: 1,
            #[cfg(test)]
            fail_next_rebuild: false,
        })
    }

    /// The current network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current plan.
    pub fn plan(&self) -> &GossipPlan {
        &self.plan
    }

    /// How many times the `O(mn)` construction has run (including the
    /// initial build).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Applies an edge insertion. Keeps the plan when the radius is
    /// unchanged; rebuilds when the new chord shrinks it.
    ///
    /// Atomic: on any error (including a failed rebuild) the maintainer's
    /// graph and plan are both unchanged, so they never disagree.
    pub fn insert_edge(&mut self, u: usize, v: usize) -> Result<MaintenanceOutcome, GraphError> {
        let candidate = self.graph.with_edge(u, v)?;
        // The old tree still spans; rebuild only if the radius improved.
        let new_radius = gossip_graph::radius(&candidate)?;
        if new_radius < self.plan.radius {
            let plan = self.build_plan(&candidate)?;
            self.commit(candidate, Some(plan));
            Ok(MaintenanceOutcome::Rebuilt)
        } else {
            self.commit(candidate, None);
            Ok(MaintenanceOutcome::Kept)
        }
    }

    /// Applies an edge removal. Errors with [`GraphError::Disconnected`]
    /// if the removal would disconnect the network; otherwise rebuilds only
    /// when a tree edge was lost.
    ///
    /// Atomic: on any error (including a failed rebuild) the maintainer's
    /// graph and plan are both unchanged, so they never disagree.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<MaintenanceOutcome, GraphError> {
        let candidate = self.graph.without_edge(u, v)?;
        if !gossip_graph::is_connected(&candidate) {
            return Err(GraphError::Disconnected);
        }
        let tree_edge = self.plan.tree.parent(u) == Some(v) || self.plan.tree.parent(v) == Some(u);
        if tree_edge {
            let plan = self.build_plan(&candidate)?;
            self.commit(candidate, Some(plan));
            Ok(MaintenanceOutcome::Rebuilt)
        } else {
            // The tree still spans. Its height equals the old radius, which
            // removal can only have grown, so the tree stays optimal.
            self.commit(candidate, None);
            Ok(MaintenanceOutcome::Kept)
        }
    }

    /// Applies several edge operations atomically, in order, with one
    /// rebuild decision at the end — at most one `O(mn)` construction no
    /// matter how many operations the batch carries.
    ///
    /// All-or-nothing: if any operation is invalid (duplicate insert,
    /// missing removal), the batch disconnects the network, or the rebuild
    /// itself fails, the maintainer's graph and plan are both unchanged —
    /// callers never observe a torn intermediate state, which a loop of
    /// single ops cannot promise under panic or mid-loop error.
    pub fn batch(&mut self, ops: &[EdgeOp]) -> Result<MaintenanceOutcome, GraphError> {
        let mut candidate = self.graph.clone();
        let mut tree_edge_lost = false;
        for op in ops {
            match *op {
                EdgeOp::Insert(u, v) => candidate = candidate.with_edge(u, v)?,
                EdgeOp::Remove(u, v) => {
                    candidate = candidate.without_edge(u, v)?;
                    tree_edge_lost |=
                        self.plan.tree.parent(u) == Some(v) || self.plan.tree.parent(v) == Some(u);
                }
            }
        }
        if !gossip_graph::is_connected(&candidate) {
            return Err(GraphError::Disconnected);
        }
        // One decision for the whole batch: rebuild if the tree no longer
        // spans (a tree edge was removed) or is no longer optimal (the net
        // effect shrank the radius below the tree's height).
        let rebuild = tree_edge_lost || gossip_graph::radius(&candidate)? < self.plan.radius;
        if rebuild {
            let plan = self.build_plan(&candidate)?;
            self.commit(candidate, Some(plan));
            Ok(MaintenanceOutcome::Rebuilt)
        } else {
            self.commit(candidate, None);
            Ok(MaintenanceOutcome::Kept)
        }
    }

    /// Runs the `O(mn)` construction against a candidate graph without
    /// touching the maintainer's state.
    fn build_plan(&mut self, graph: &Graph) -> Result<GossipPlan, GraphError> {
        #[cfg(test)]
        if self.fail_next_rebuild {
            self.fail_next_rebuild = false;
            return Err(GraphError::Disconnected);
        }
        GossipPlanner::new(graph)?.plan()
    }

    /// Commits a validated candidate graph (and rebuilt plan, if any) in
    /// one step — the only place maintainer state changes.
    fn commit(&mut self, graph: Graph, plan: Option<GossipPlan>) {
        self.graph = graph;
        if let Some(plan) = plan {
            self.plan = plan;
            self.rebuilds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::simulate_gossip;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn assert_plan_valid(m: &TreeMaintainer) {
        let o =
            simulate_gossip(m.graph(), &m.plan().schedule, &m.plan().origin_of_message).unwrap();
        assert!(o.complete);
        assert!(m.plan().tree.is_spanning_tree_of(m.graph()));
        // Optimality: tree height == current radius.
        assert_eq!(
            m.plan().tree.height(),
            gossip_graph::radius(m.graph()).unwrap()
        );
    }

    #[test]
    fn non_tree_removal_keeps_plan() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        assert_plan_valid(&m);
        // A ring's minimum-depth tree omits exactly one edge; find it.
        let (u, v) = (0..8)
            .map(|i| (i, (i + 1) % 8))
            .find(|&(u, v)| {
                m.plan().tree.parent(u) != Some(v) && m.plan().tree.parent(v) != Some(u)
            })
            .expect("one ring edge is a chord");
        assert_eq!(m.remove_edge(u, v).unwrap(), MaintenanceOutcome::Kept);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn tree_edge_removal_rebuilds() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        let root = m.plan().tree.root();
        let child = m.plan().tree.children(root)[0] as usize;
        assert_eq!(
            m.remove_edge(root, child).unwrap(),
            MaintenanceOutcome::Rebuilt
        );
        assert_eq!(m.rebuilds(), 2);
        assert_plan_valid(&m);
    }

    #[test]
    fn disconnecting_removal_rejected_and_state_preserved() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut m = TreeMaintainer::new(path).unwrap();
        assert_eq!(m.remove_edge(1, 2).unwrap_err(), GraphError::Disconnected);
        assert!(m.graph().has_edge(1, 2), "removal must be rolled back");
        assert_plan_valid(&m);
    }

    #[test]
    fn radius_shrinking_insert_rebuilds() {
        // A path rooted at its center: adding a long chord shrinks the radius.
        let path = Graph::from_edges(7, &(0..6).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
        let mut m = TreeMaintainer::new(path).unwrap();
        assert_eq!(m.plan().radius, 3);
        // Chord (1, 5) puts vertex 1 within 2 hops of everything.
        assert_eq!(m.insert_edge(1, 5).unwrap(), MaintenanceOutcome::Rebuilt);
        assert_eq!(m.plan().radius, 2);
        assert_plan_valid(&m);
    }

    #[test]
    fn radius_preserving_insert_keeps_plan() {
        let mut m = TreeMaintainer::new(ring(9)).unwrap();
        // A short chord does not change the radius of C9 (4).
        assert_eq!(m.insert_edge(0, 2).unwrap(), MaintenanceOutcome::Kept);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn failed_rebuild_rolls_back_insert() {
        // A path whose radius shrinks when a chord is added, forcing the
        // rebuild path; the injected rebuild failure must leave both the
        // graph and the plan exactly as they were.
        let path = Graph::from_edges(7, &(0..6).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
        let mut m = TreeMaintainer::new(path).unwrap();
        let before_graph = m.graph().clone();
        let before_plan = m.plan().clone();
        m.fail_next_rebuild = true;
        assert!(m.insert_edge(1, 5).is_err());
        assert!(
            !m.graph().has_edge(1, 5),
            "graph change must be rolled back"
        );
        assert_eq!(m.graph().m(), before_graph.m());
        assert_eq!(m.plan().schedule, before_plan.schedule);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
        // The maintainer still works after the failed attempt.
        assert_eq!(m.insert_edge(1, 5).unwrap(), MaintenanceOutcome::Rebuilt);
        assert_plan_valid(&m);
    }

    #[test]
    fn failed_rebuild_rolls_back_remove() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        let root = m.plan().tree.root();
        let child = m.plan().tree.children(root)[0] as usize;
        let before_plan = m.plan().clone();
        m.fail_next_rebuild = true;
        assert!(m.remove_edge(root, child).is_err());
        assert!(
            m.graph().has_edge(root, child),
            "graph change must be rolled back"
        );
        assert_eq!(m.plan().schedule, before_plan.schedule);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
        assert_eq!(
            m.remove_edge(root, child).unwrap(),
            MaintenanceOutcome::Rebuilt
        );
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_applies_all_ops_with_one_rebuild() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        let root = m.plan().tree.root();
        let child = m.plan().tree.children(root)[0] as usize;
        // Remove a tree edge and add two chords in one batch: exactly one
        // rebuild, not three.
        let ops = [
            EdgeOp::Remove(root, child),
            EdgeOp::Insert(0, 4),
            EdgeOp::Insert(1, 5),
        ];
        assert_eq!(m.batch(&ops).unwrap(), MaintenanceOutcome::Rebuilt);
        assert_eq!(m.rebuilds(), 2);
        assert!(!m.graph().has_edge(root, child));
        assert!(m.graph().has_edge(0, 4) && m.graph().has_edge(1, 5));
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_keeps_plan_when_tree_unaffected() {
        let mut m = TreeMaintainer::new(ring(9)).unwrap();
        // Two short chords on the same arc: the tree still spans and C9's
        // radius (4) is unchanged — chords this local shortcut nothing far.
        let ops = [EdgeOp::Insert(0, 2), EdgeOp::Insert(1, 3)];
        assert_eq!(m.batch(&ops).unwrap(), MaintenanceOutcome::Kept);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_is_all_or_nothing_on_invalid_op() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        let before = m.graph().clone();
        // The first op is fine, the second inserts a duplicate: nothing
        // may land.
        let ops = [EdgeOp::Insert(0, 3), EdgeOp::Insert(1, 2)];
        assert!(m.batch(&ops).is_err());
        assert!(!m.graph().has_edge(0, 3), "first op must be rolled back");
        assert_eq!(m.graph().m(), before.m());
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_rejects_net_disconnection() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut m = TreeMaintainer::new(path).unwrap();
        let ops = [EdgeOp::Insert(0, 2), EdgeOp::Remove(2, 3)];
        assert_eq!(m.batch(&ops).unwrap_err(), GraphError::Disconnected);
        assert!(!m.graph().has_edge(0, 2), "batch must be rolled back");
        assert!(m.graph().has_edge(2, 3));
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_survives_mid_batch_disconnection_if_net_connected() {
        // Removing a path edge disconnects transiently; the insert in the
        // same batch restores connectivity, so the batch must succeed.
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut m = TreeMaintainer::new(path).unwrap();
        let ops = [EdgeOp::Remove(1, 2), EdgeOp::Insert(0, 2)];
        assert_eq!(m.batch(&ops).unwrap(), MaintenanceOutcome::Rebuilt);
        assert!(!m.graph().has_edge(1, 2));
        assert!(m.graph().has_edge(0, 2));
        assert_plan_valid(&m);
    }

    #[test]
    fn batch_failed_rebuild_rolls_back_everything() {
        let mut m = TreeMaintainer::new(ring(8)).unwrap();
        let root = m.plan().tree.root();
        let child = m.plan().tree.children(root)[0] as usize;
        let before_plan = m.plan().clone();
        m.fail_next_rebuild = true;
        assert!(m
            .batch(&[EdgeOp::Remove(root, child), EdgeOp::Insert(0, 4)])
            .is_err());
        assert!(m.graph().has_edge(root, child));
        assert!(!m.graph().has_edge(0, 4));
        assert_eq!(m.plan().schedule, before_plan.schedule);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut m = TreeMaintainer::new(ring(6)).unwrap();
        assert_eq!(m.batch(&[]).unwrap(), MaintenanceOutcome::Kept);
        assert_eq!(m.rebuilds(), 1);
        assert_plan_valid(&m);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut m = TreeMaintainer::new(ring(5)).unwrap();
        assert!(m.insert_edge(0, 1).is_err());
    }

    #[test]
    fn missing_removal_rejected() {
        let mut m = TreeMaintainer::new(ring(5)).unwrap();
        assert!(m.remove_edge(0, 2).is_err());
    }
}
