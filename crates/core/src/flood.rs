//! Greedy eager down-flooding: the engine behind the **UpDown** baseline
//! (reconstruction of Gonzalez's PDCS 2000 algorithm, cited as \[15\]) and the
//! **telephone-model** tree-gossip baseline.
//!
//! Both algorithms share the same shape: the up phase is algorithm Simple's
//! (message `m` relayed so the vertex at level `l` sends it at `m - l`;
//! the root holds everything by `n - 1`), and the down phase starts
//! *immediately* — each vertex forwards the messages it has acquired to
//! each child as soon as that child has a free receive slot. Without the
//! lookahead machinery of ConcurrentUpDown, messages "get stuck" waiting for
//! children that are still busy feeding the up phase, which is exactly the
//! behaviour the paper describes for UpDown and why its schedules are longer
//! than `n + r`.
//!
//! The multicast variant serves every currently-free child that still needs
//! the chosen message in one round; the telephone variant serves exactly one
//! child per round.

use crate::labeling::LabelView;
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};
use std::collections::BTreeSet;

/// Safety margin multiplier for the round loop; no greedy run should ever
/// approach it (panic = algorithm bug, not input problem).
const ROUND_LIMIT_FACTOR: usize = 8;

/// Builds an "eager down-flood" schedule: Simple's up phase overlaid with a
/// greedy as-soon-as-possible down phase.
///
/// `multicast = true` gives the UpDown reconstruction; `false` restricts
/// every down transmission to a single destination (telephone-legal — and
/// the up phase is unicast by construction).
pub(crate) fn eager_flood_gossip(tree: &RootedTree, multicast: bool) -> Schedule {
    let lv = LabelView::new(tree);
    let n = lv.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }
    let r = lv.height() as usize;

    // --- Fixed up phase (identical to algorithm Simple's phase 1). ---
    for label in lv.labels() {
        let p = lv.params(label);
        if p.is_root() {
            continue;
        }
        let vertex = lv.vertex(label);
        let parent = lv.vertex(p.parent_i);
        for m in p.i..=p.j {
            let t = (m - p.k) as usize;
            schedule.add_transmission(t, Transmission::unicast(m, vertex, parent));
        }
    }

    // Busy calendars from the up phase. send_busy[v][t] / recv_busy[v][t]
    // grow on demand as the down phase commits transmissions.
    let horizon_guess = 2 * n + r + 4;
    let mut send_busy = vec![vec![false; horizon_guess]; n];
    let mut recv_busy = vec![vec![false; horizon_guess]; n];
    for label in lv.labels() {
        let p = lv.params(label);
        if !p.is_root() {
            for m in p.i..=p.j {
                send_busy[label as usize][(m - p.k) as usize] = true;
            }
        }
        if !p.is_leaf() {
            // Receives of the up phase: message m in (i, j] arrives at m - k.
            for m in (p.i + 1)..=p.j {
                recv_busy[label as usize][(m - p.k) as usize] = true;
            }
        }
    }

    // acquired[v] = (time, msg) log; undelivered[v][c_idx] = messages not
    // yet pushed to child c, ordered by acquisition time (oldest first).
    let mut undelivered: Vec<Vec<BTreeSet<(usize, u32)>>> = (0..n as u32)
        .map(|label| vec![BTreeSet::new(); lv.children(label).len()])
        .collect();

    // Seed: every vertex acquires its own message at 0 and its up-phase
    // receives at their fixed times; each acquisition is owed to every child
    // whose subtree does not contain it. Returns how many debts were added.
    fn owe(
        lv: &LabelView,
        und: &mut [Vec<BTreeSet<(usize, u32)>>],
        label: u32,
        t: usize,
        m: u32,
    ) -> usize {
        let mut added = 0;
        for (ci, &c) in lv.children(label).iter().enumerate() {
            let cp = lv.params(c);
            if m < cp.i || m > cp.j {
                let fresh = und[label as usize][ci].insert((t, m));
                debug_assert!(fresh, "double acquisition of {m} at vertex {label}");
                added += 1;
            }
        }
        added
    }
    for label in lv.labels() {
        let p = lv.params(label);
        owe(&lv, &mut undelivered, label, 0, p.i);
        for m in (p.i + 1)..=p.j {
            owe(&lv, &mut undelivered, label, (m - p.k) as usize, m);
        }
    }

    let ensure = |cal: &mut Vec<bool>, t: usize| {
        if cal.len() <= t {
            cal.resize(t + 1, false);
        }
    };

    // --- Greedy down phase. ---
    let limit = ROUND_LIMIT_FACTOR * (n * n + n + r + 8);
    let mut remaining: usize = undelivered
        .iter()
        .flat_map(|per_child| per_child.iter().map(BTreeSet::len))
        .sum();
    let mut t = 0usize;
    while remaining > 0 {
        assert!(t < limit, "down flood failed to converge (bug)");
        for label in lv.labels() {
            let v = label as usize;
            ensure(&mut send_busy[v], t);
            if send_busy[v][t] {
                continue;
            }
            let kids = lv.children(label);
            // Free children with something deliverable now, keyed by their
            // oldest owed acquisition.
            let mut best: Option<(usize, u32)> = None;
            for (ci, &c) in kids.iter().enumerate() {
                ensure(&mut recv_busy[c as usize], t + 1);
                if recv_busy[c as usize][t + 1] {
                    continue;
                }
                if let Some(&(ta, m)) = undelivered[v][ci].first() {
                    if ta <= t && best.is_none_or(|b| (ta, m) < b) {
                        best = Some((ta, m));
                    }
                }
            }
            let Some((ta, msg)) = best else { continue };
            // Serve every free child owed this message (or just one under
            // the telephone restriction).
            let mut dests = Vec::new();
            for (ci, &c) in kids.iter().enumerate() {
                if recv_busy[c as usize][t + 1] || !undelivered[v][ci].remove(&(ta, msg)) {
                    continue;
                }
                remaining -= 1;
                recv_busy[c as usize][t + 1] = true;
                dests.push(c);
                // The child now owes this message to its own children.
                remaining += owe(&lv, &mut undelivered, c, t + 1, msg);
                if !multicast {
                    break;
                }
            }
            debug_assert!(!dests.is_empty());
            send_busy[v][t] = true;
            let dest_vertices: Vec<usize> = dests.iter().map(|&c| lv.vertex(c)).collect();
            schedule.add_transmission(t, Transmission::new(msg, lv.vertex(label), dest_vertices));
        }
        t += 1;
    }

    schedule.trim();
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::tree_origins;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::{validate_gossip_schedule, CommModel};

    fn star(n: usize) -> RootedTree {
        let mut p = vec![0u32; n];
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn multicast_flood_completes_and_validates() {
        let t = star(8);
        let s = eager_flood_gossip(&t, true);
        let g = t.to_graph();
        let o = validate_gossip_schedule(&g, &s, &tree_origins(&t), CommModel::Multicast).unwrap();
        assert!(o.complete);
    }

    #[test]
    fn unicast_flood_is_telephone_legal() {
        let t = star(6);
        let s = eager_flood_gossip(&t, false);
        let g = t.to_graph();
        let o = validate_gossip_schedule(&g, &s, &tree_origins(&t), CommModel::Telephone).unwrap();
        assert!(o.complete);
    }

    #[test]
    fn multicast_never_slower_than_unicast() {
        for tree in [
            star(9),
            RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap(),
        ] {
            let mc = eager_flood_gossip(&tree, true).makespan();
            let tp = eager_flood_gossip(&tree, false).makespan();
            assert!(mc <= tp, "multicast {mc} > telephone {tp}");
        }
    }
}
