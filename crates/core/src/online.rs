//! The online (distributed) version of ConcurrentUpDown (the paper's §4).
//!
//! "Our algorithms can be easily adapted for the online case. The only
//! global information that they need is the value of i, j, and k. Once this
//! information is disseminated throughout the network, each processor may
//! send its messages at the specified times."
//!
//! [`OnlineVertex`] is that per-processor protocol: a pure state machine
//! that, given the current time and whatever arrived from its parent this
//! round, decides the one multicast to emit — using only its own `(i, j,
//! k)`, its parent's label (to know whether it is the first child), and its
//! children's subtree ranges (to know which child already owns a message).
//! No vertex ever inspects another vertex's state.
//!
//! Two harnesses execute the protocol: [`run_online`] (deterministic
//! lock-step rounds in one thread) and [`run_online_threaded`] (one OS
//! thread per processor, crossbeam channels as links, a barrier per round —
//! a faithful little distributed system). Both produce the *identical*
//! schedule to the offline [`crate::concurrent_updown`], which is the
//! paper's online-adaptation claim made executable.

use crate::labeling::{LabelView, VertexParams};
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};
use gossip_telemetry::{ChromeTrace, NoopRecorder, Recorder, RecorderExt, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// What one vertex decides to transmit in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineSend {
    /// The message to multicast.
    pub msg: u32,
    /// Whether the parent is in the destination set.
    pub to_parent: bool,
    /// Destination children, as labels.
    pub to_children: Vec<u32>,
}

/// The per-processor online protocol state.
#[derive(Debug, Clone)]
pub struct OnlineVertex {
    p: VertexParams,
    /// Children labels and their subtree range ends.
    children: Vec<(u32, u32)>,
    /// O-messages received at times `i - k` and `i - k + 1`, awaiting their
    /// deferred slots `j - k + 1` and `j - k + 2`.
    deferred: [Option<u32>; 2],
}

impl OnlineVertex {
    /// Builds the protocol state from purely local information: this
    /// vertex's parameters and its children's `(label, range end)` pairs.
    pub fn new(p: VertexParams, children: Vec<(u32, u32)>) -> Self {
        OnlineVertex {
            p,
            children,
            deferred: [None, None],
        }
    }

    /// All children except the one whose subtree contains `m`.
    fn children_except_owner(&self, m: u32) -> Vec<u32> {
        self.children
            .iter()
            .filter(|&&(c, end)| !(c <= m && m <= end))
            .map(|&(c, _)| c)
            .collect()
    }

    /// Advances one round: `t` is the current time, `from_parent` the
    /// message that arrived from the parent at time `t` (if any). Returns
    /// the multicast to perform at time `t`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the protocol derives two different messages for the same
    /// round — impossible per the paper's Theorem 1, so a panic indicates
    /// corrupted inputs (e.g. a `from_parent` stream not produced by this
    /// protocol).
    pub fn on_round(&mut self, t: usize, from_parent: Option<u32>) -> Option<OnlineSend> {
        let (i, j, k) = (self.p.i as usize, self.p.j as usize, self.p.k as usize);
        let is_leaf = self.p.is_leaf();
        let is_root = self.p.is_root();

        // Classify the arrival: immediate forward or deferral.
        let mut forward_now = None;
        if let Some(m) = from_parent {
            debug_assert!(
                (m as usize) < i || (m as usize) > j,
                "parent sent own-subtree message {m}"
            );
            if !is_leaf {
                if t == i - k {
                    self.deferred[0] = Some(m);
                } else if t == i - k + 1 {
                    self.deferred[1] = Some(m);
                } else {
                    forward_now = Some(m);
                }
            }
        }

        let mut decision: Option<OnlineSend> = None;
        let mut set = |send: OnlineSend| match &mut decision {
            None => decision = Some(send),
            Some(existing) => {
                assert_eq!(existing.msg, send.msg, "online protocol conflict");
                existing.to_parent |= send.to_parent;
                existing.to_children.extend(send.to_children);
            }
        };

        // (U3) lip-message at time 0.
        if t == 0 && self.p.has_lip() {
            set(OnlineSend {
                msg: self.p.i,
                to_parent: true,
                to_children: vec![],
            });
        }

        // (U4)+(D3) window: message m = t + k while i <= m <= j, except the
        // deferred own message when i == k.
        if t + k >= i && t + k <= j {
            let m = (t + k) as u32;
            if !(m == self.p.i && i == k) {
                let to_parent = !is_root && m >= self.p.rip_start();
                let to_children = if is_leaf {
                    vec![]
                } else {
                    self.children_except_owner(m)
                };
                if to_parent || !to_children.is_empty() {
                    set(OnlineSend {
                        msg: m,
                        to_parent,
                        to_children,
                    });
                }
            }
        }

        if !is_leaf {
            // Deferred slot j - k + 1: the own message (i == k case) or the
            // o-message that arrived at i - k.
            if t == j - k + 1 {
                if i == k {
                    set(OnlineSend {
                        msg: self.p.i,
                        to_parent: false,
                        to_children: self.children_except_owner(self.p.i),
                    });
                } else if let Some(m) = self.deferred[0].take() {
                    set(OnlineSend {
                        msg: m,
                        to_parent: false,
                        to_children: self.children.iter().map(|&(c, _)| c).collect(),
                    });
                }
            }
            // Deferred slot j - k + 2.
            if t == j - k + 2 {
                if let Some(m) = self.deferred[1].take() {
                    set(OnlineSend {
                        msg: m,
                        to_parent: false,
                        to_children: self.children.iter().map(|&(c, _)| c).collect(),
                    });
                }
            }
            // (D2) immediate forwarding.
            if let Some(m) = forward_now {
                set(OnlineSend {
                    msg: m,
                    to_parent: false,
                    to_children: self.children.iter().map(|&(c, _)| c).collect(),
                });
            }
        }

        decision
    }
}

/// Builds the per-label protocol states for a tree.
fn protocols(lv: &LabelView) -> Vec<OnlineVertex> {
    lv.labels()
        .map(|label| {
            let children = lv
                .children(label)
                .iter()
                .map(|&c| (c, lv.params(c).j))
                .collect();
            OnlineVertex::new(lv.params(label), children)
        })
        .collect()
}

/// Runs the online protocol in deterministic lock-step (single thread) and
/// returns the resulting schedule (vertex space, normalized).
///
/// The schedule equals `concurrent_updown(tree)` normalized — the
/// executable form of the paper's online claim.
pub fn run_online(tree: &RootedTree) -> Schedule {
    let lv = LabelView::new(tree);
    let n = lv.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }
    let mut vertices = protocols(&lv);
    let horizon = n + lv.height() as usize;
    // in_flight[label] = message arriving from the parent this round.
    let mut arriving: Vec<Option<u32>> = vec![None; n];
    for t in 0..horizon {
        let mut next_arriving: Vec<Option<u32>> = vec![None; n];
        for label in lv.labels() {
            let Some(send) = vertices[label as usize].on_round(t, arriving[label as usize]) else {
                continue;
            };
            let mut dests = Vec::with_capacity(send.to_children.len() + 1);
            if send.to_parent {
                dests.push(lv.vertex(lv.params(label).parent_i));
            }
            for &c in &send.to_children {
                assert!(
                    next_arriving[c as usize].is_none(),
                    "receive conflict at label {c} time {}",
                    t + 1
                );
                next_arriving[c as usize] = Some(send.msg);
                dests.push(lv.vertex(c));
            }
            schedule.add_transmission(t, Transmission::new(send.msg, lv.vertex(label), dests));
        }
        arriving = next_arriving;
    }
    schedule.normalize();
    schedule
}

/// Runs the online protocol as a real concurrent system: one thread per
/// processor, crossbeam channels as the parent→child links, and a barrier
/// marking round boundaries. Returns the (normalized) schedule assembled
/// from each thread's local log.
///
/// Upward traffic needs no channels in this harness: parents derive their
/// children's upward sends from their own protocol (the receive sides U1/U2
/// are time-determined), so only parent→child links carry payloads — which
/// is also the only direction the D2 forwarding rule depends on.
pub fn run_online_threaded(tree: &RootedTree) -> Schedule {
    run_online_threaded_recorded(tree, &NoopRecorder)
}

/// [`run_online_threaded`] with telemetry: an `online_threaded` span, an
/// `online/sends` counter, a per-thread `online/round_ns` round-latency
/// histogram, and per-thread `online_thread` events timestamping when each
/// processor's thread finished its rounds (wall-clock nanoseconds since the
/// harness started, so thread skew is visible in the JSONL stream).
pub fn run_online_threaded_recorded(tree: &RootedTree, recorder: &dyn Recorder) -> Schedule {
    run_online_threaded_impl(tree, recorder, None)
}

/// One thread's wall-clock round log from a traced online run:
/// `(round, start_ns, dur_ns, sent message)` per round, nanoseconds since
/// the harness epoch. Duration covers receive + decide + send, *excluding*
/// the barrier wait, so per-round slack shows up as lane gaps in the trace.
struct ThreadRounds {
    vertex: usize,
    rounds: Vec<(usize, u64, u64, Option<u32>)>,
}

/// [`run_online_threaded_recorded`] plus a wall-clock Chrome trace: one
/// lane per processor thread, one complete event per round (timestamped
/// with real elapsed microseconds from a shared epoch, reusing the same
/// `Instant` clock as the `online_thread` telemetry events), so thread
/// skew and barrier slack are visible in `chrome://tracing` / Perfetto.
pub fn run_online_threaded_traced(
    tree: &RootedTree,
    recorder: &dyn Recorder,
) -> (Schedule, ChromeTrace) {
    let timings: Mutex<Vec<ThreadRounds>> = Mutex::new(Vec::new());
    let schedule = run_online_threaded_impl(tree, recorder, Some(&timings));
    let mut by_vertex = timings.into_inner();
    by_vertex.sort_by_key(|t| t.vertex);
    let mut trace = ChromeTrace::new();
    trace.process_name(1, "online executor (wall clock)");
    for th in &by_vertex {
        trace.thread_name(1, th.vertex as u64, &format!("P{}", th.vertex));
        for &(t, start_ns, dur_ns, msg) in &th.rounds {
            let name = match msg {
                Some(m) => format!("r{t} send m{m}"),
                None => format!("r{t}"),
            };
            let mut args = vec![("round".to_string(), Value::from_u64(t as u64))];
            if let Some(m) = msg {
                args.push(("msg".to_string(), Value::from_u64(m as u64)));
            }
            trace.complete(
                &name,
                "online/round",
                1,
                th.vertex as u64,
                start_ns as f64 / 1000.0,
                dur_ns as f64 / 1000.0,
                args,
            );
        }
    }
    (schedule, trace)
}

fn run_online_threaded_impl(
    tree: &RootedTree,
    recorder: &dyn Recorder,
    timings: Option<&Mutex<Vec<ThreadRounds>>>,
) -> Schedule {
    let _span = recorder.span("online_threaded");
    let lv = LabelView::new(tree);
    let n = lv.n();
    if n <= 1 {
        return Schedule::new(n);
    }
    let horizon = n + lv.height() as usize;
    let epoch = Instant::now();

    // Channels: one per non-root vertex, carrying Option<u32> per round.
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = crossbeam::channel::bounded::<Option<u32>>(1);
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let barrier = Arc::new(std::sync::Barrier::new(n));
    let log: Arc<Mutex<Vec<(usize, Transmission)>>> = Arc::new(Mutex::new(Vec::new()));
    let wants_tx = recorder.wants_transmissions();

    std::thread::scope(|scope| {
        for label in lv.labels() {
            let mut vertex = {
                let children = lv
                    .children(label)
                    .iter()
                    .map(|&c| (c, lv.params(c).j))
                    .collect();
                OnlineVertex::new(lv.params(label), children)
            };
            let my_rx = if lv.params(label).is_root() {
                None
            } else {
                receivers[label as usize].take()
            };
            let child_txs: Vec<(u32, crossbeam::channel::Sender<Option<u32>>)> = lv
                .children(label)
                .iter()
                .map(|&c| (c, senders[c as usize].clone()))
                .collect();
            let barrier = Arc::clone(&barrier);
            let log = Arc::clone(&log);
            let lv_ref = &lv;
            let is_root = lv.params(label).is_root();
            scope.spawn(move || {
                let mut sends = 0u64;
                let mut my_rounds: Vec<(usize, u64, u64, Option<u32>)> = Vec::new();
                for t in 0..horizon {
                    let round_start = recorder.enabled().then(Instant::now);
                    let wall_start = timings.map(|_| epoch.elapsed().as_nanos() as u64);
                    // What arrives at time t was sent by the parent in its
                    // round t - 1; nothing is in flight at t = 0.
                    let arrived: Option<u32> = match (&my_rx, t) {
                        (Some(rx), t) if t >= 1 => rx.recv().expect("parent alive"),
                        _ => None,
                    };
                    let send = vertex.on_round(t, arrived);
                    if send.is_some() {
                        sends += 1;
                    }
                    // Every child gets exactly one Option per round, so the
                    // channel doubles as the round clock for receivers.
                    match &send {
                        Some(s) => {
                            for (c, tx) in &child_txs {
                                let payload = s.to_children.contains(c).then_some(s.msg);
                                tx.send(payload).expect("child alive");
                            }
                            let mut dests = Vec::with_capacity(s.to_children.len() + 1);
                            if s.to_parent {
                                dests.push(lv_ref.vertex(lv_ref.params(label).parent_i));
                            }
                            dests.extend(s.to_children.iter().map(|&c| lv_ref.vertex(c)));
                            let tx_rec = Transmission::new(s.msg, lv_ref.vertex(label), dests);
                            if wants_tx {
                                // Emitted from each sender thread at send
                                // time; flight records carry their round, so
                                // cross-thread interleaving cannot scramble
                                // the capture.
                                let d32: Vec<u32> = tx_rec.to.iter().map(|&d| d as u32).collect();
                                recorder.transmission(t, tx_rec.msg, tx_rec.from as u32, &d32);
                            }
                            log.lock().push((t, tx_rec));
                        }
                        None => {
                            for (_, tx) in &child_txs {
                                tx.send(None).expect("child alive");
                            }
                        }
                    }
                    if let Some(start) = wall_start {
                        let end = epoch.elapsed().as_nanos() as u64;
                        let msg = send.as_ref().map(|s| s.msg);
                        my_rounds.push((t, start, end.saturating_sub(start), msg));
                    }
                    barrier.wait();
                    if let Some(start) = round_start {
                        recorder.observe("online/round_ns", start.elapsed().as_nanos() as f64);
                        // One thread (the root) publishes the live round
                        // cursor; every thread writing it would be n-1
                        // redundant stores per round.
                        if is_root {
                            recorder.gauge("round_current", (t + 1) as f64);
                        }
                    }
                }
                if let Some(sink) = timings {
                    sink.lock().push(ThreadRounds {
                        vertex: lv_ref.vertex(label),
                        rounds: my_rounds,
                    });
                }
                if recorder.enabled() {
                    recorder.counter("online/sends", sends);
                    recorder.event(
                        "online_thread",
                        &[
                            ("label", Value::from_u64(label as u64)),
                            ("vertex", Value::from_u64(lv_ref.vertex(label) as u64)),
                            ("sends", Value::from_u64(sends)),
                            (
                                "done_ns",
                                Value::from_u64(epoch.elapsed().as_nanos() as u64),
                            ),
                        ],
                    );
                }
            });
        }
    });

    let mut schedule = Schedule::new(n);
    for (t, tx) in Arc::try_unwrap(log).expect("threads joined").into_inner() {
        schedule.add_transmission(t, tx);
    }
    schedule.normalize();
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{concurrent_updown, tree_origins};
    use gossip_graph::NO_PARENT;
    use gossip_model::simulate_gossip;

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    fn offline_normalized(tree: &RootedTree) -> Schedule {
        let mut s = concurrent_updown(tree);
        s.normalize();
        s
    }

    #[test]
    fn lockstep_matches_offline_on_fig5() {
        let tree = fig5();
        assert_eq!(run_online(&tree), offline_normalized(&tree));
    }

    #[test]
    fn lockstep_matches_offline_on_assorted_trees() {
        for tree in [
            RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap(),
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 0, 0]).unwrap(),
            RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap(),
            RootedTree::from_parents(2, &[2, 0, NO_PARENT, 2, 3]).unwrap(),
        ] {
            assert_eq!(run_online(&tree), offline_normalized(&tree), "{tree:?}");
        }
    }

    #[test]
    fn threaded_matches_offline() {
        let tree = fig5();
        assert_eq!(run_online_threaded(&tree), offline_normalized(&tree));
    }

    #[test]
    fn threaded_matches_on_deep_chain() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3, 4]).unwrap();
        assert_eq!(run_online_threaded(&tree), offline_normalized(&tree));
    }

    #[test]
    fn online_schedule_simulates_clean() {
        let tree = fig5();
        let s = run_online(&tree);
        let g = tree.to_graph();
        let o = simulate_gossip(&g, &s, &tree_origins(&tree)).unwrap();
        assert!(o.complete);
        assert_eq!(o.completion_time, Some(19));
    }

    #[test]
    fn traced_run_matches_and_covers_every_send() {
        let tree = fig5();
        let (s, trace) = run_online_threaded_traced(&tree, &NoopRecorder);
        assert_eq!(s, offline_normalized(&tree));
        let v = trace.to_value();
        let events = v.as_array().unwrap();
        // One complete event per (thread, round): 16 threads x horizon rounds.
        let completes: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(completes.len() % 16, 0);
        assert!(!completes.is_empty());
        // Every send in the schedule appears as a named send event.
        let send_events = completes
            .iter()
            .filter(|e| e["args"].get("msg").is_some())
            .count();
        assert_eq!(send_events, s.stats().transmissions);
        for e in events {
            for f in ["ph", "ts", "pid", "tid"] {
                assert!(e.get(f).is_some(), "missing {f}");
            }
        }
    }

    #[test]
    fn singleton() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(run_online(&tree).makespan(), 0);
        assert_eq!(run_online_threaded(&tree).makespan(), 0);
    }
}
