//! Rule-annotated ConcurrentUpDown: every transmission tagged with the
//! paper step (U3, U4, D2, D3, or a merged U4+D3) that produced it.
//!
//! The plain [`crate::concurrent_updown`] emits an opaque schedule; this
//! variant preserves the derivation, which makes three things possible:
//! teaching material that shows the algorithm's anatomy round by round,
//! debugging of reconstructed rules against the paper's timing formulas,
//! and the structural assertions in this module's tests (each rule fires
//! only inside its published time window).

use crate::labeling::LabelView;
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};
use std::collections::BTreeMap;

/// Which step of the paper's §3.2 algorithms produced a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// (U3) the lip-message sent to the parent at time 0.
    U3Lip,
    /// (U4) a rip-message sent to the parent at time `m - k`.
    U4Rip,
    /// (U4)+(D3) merged: the same message simultaneously to the parent and
    /// to (some) children.
    U4D3Merged,
    /// (D3) an own-subtree message multicast to children at `m - k`.
    D3Down,
    /// (D3) the deferred own message (the `i = k` exception) at `j - k + 1`.
    D3DeferredOwn,
    /// (D2) an o-message forwarded the round it arrived.
    D2Forward,
    /// (D2) an o-message deferred to slot `j - k + 1` or `j - k + 2`.
    D2Deferred,
}

impl Rule {
    /// Short display tag, paper-style.
    pub fn tag(&self) -> &'static str {
        match self {
            Rule::U3Lip => "U3",
            Rule::U4Rip => "U4",
            Rule::U4D3Merged => "U4+D3",
            Rule::D3Down => "D3",
            Rule::D3DeferredOwn => "D3*",
            Rule::D2Forward => "D2",
            Rule::D2Deferred => "D2*",
        }
    }
}

/// One annotated transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedTransmission {
    /// Send time.
    pub time: usize,
    /// The transmission (vertex space).
    pub transmission: Transmission,
    /// The producing rule.
    pub rule: Rule,
}

/// Builds the ConcurrentUpDown schedule with per-transmission rule tags.
///
/// The underlying schedule (forgetting tags) equals
/// [`crate::concurrent_updown`] exactly — asserted in tests.
pub fn annotated_concurrent_updown(tree: &RootedTree) -> Vec<AnnotatedTransmission> {
    let lv = LabelView::new(tree);
    let n = lv.n();
    if n <= 1 {
        return Vec::new();
    }

    #[derive(Debug)]
    struct Pending {
        msg: u32,
        to_parent: bool,
        child_dests: Vec<u32>,
        rules: Vec<Rule>,
    }

    let mut out = Vec::new();
    let mut recv_from_parent: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];

    for label in lv.labels() {
        let p = lv.params(label);
        let (i, j, k) = (p.i as usize, p.j as usize, p.k as usize);
        let mut sends: BTreeMap<usize, Pending> = BTreeMap::new();
        let mut add = |t: usize, msg: u32, to_parent: bool, child_dests: Vec<u32>, rule: Rule| {
            sends
                .entry(t)
                .and_modify(|e| {
                    assert_eq!(e.msg, msg);
                    e.to_parent |= to_parent;
                    e.child_dests.extend_from_slice(&child_dests);
                    e.rules.push(rule);
                })
                .or_insert(Pending {
                    msg,
                    to_parent,
                    child_dests,
                    rules: vec![rule],
                });
        };

        if !p.is_root() {
            if p.has_lip() {
                add(0, p.i, true, Vec::new(), Rule::U3Lip);
            }
            for m in p.rip_start()..=p.j {
                add(m as usize - k, m, true, Vec::new(), Rule::U4Rip);
            }
        }
        if !p.is_leaf() {
            for m in i as u32..=j as u32 {
                let (t, rule) = if m as usize == i && i == k {
                    (j - k + 1, Rule::D3DeferredOwn)
                } else {
                    (m as usize - k, Rule::D3Down)
                };
                let dests: Vec<u32> = lv
                    .children(label)
                    .iter()
                    .copied()
                    .filter(|&c| lv.child_containing(label, m) != Some(c))
                    .collect();
                if !dests.is_empty() {
                    add(t, m, false, dests, rule);
                }
            }
            for &(t_arrive, m) in &recv_from_parent[label as usize] {
                let (t_send, rule) = if t_arrive == i - k {
                    (j - k + 1, Rule::D2Deferred)
                } else if t_arrive == i - k + 1 {
                    (j - k + 2, Rule::D2Deferred)
                } else {
                    (t_arrive, Rule::D2Forward)
                };
                add(t_send, m, false, lv.children(label).to_vec(), rule);
            }
        }

        let vertex = lv.vertex(label);
        for (t, ev) in sends {
            let mut dests = Vec::with_capacity(ev.child_dests.len() + 1);
            if ev.to_parent {
                dests.push(lv.vertex(p.parent_i));
            }
            for &c in &ev.child_dests {
                recv_from_parent[c as usize].push((t + 1, ev.msg));
                dests.push(lv.vertex(c));
            }
            // Merge rule: an up-rule plus a down-rule at the same time is
            // the paper's U4/D3 coincidence.
            let rule = if ev.rules.len() == 1 {
                ev.rules[0]
            } else {
                debug_assert!(ev.rules.contains(&Rule::U4Rip));
                Rule::U4D3Merged
            };
            out.push(AnnotatedTransmission {
                time: t,
                transmission: Transmission::new(ev.msg, vertex, dests),
                rule,
            });
        }
    }
    out.sort_by_key(|a| (a.time, a.transmission.from));
    out
}

/// Lookup table from `(send_time, sender_vertex)` — the key shape
/// [`Schedule::iter`] yields — to the producing rule. The model enforces
/// one send per processor per round, so the key is unique; trace exporters
/// use this to label each multicast with the paper rule that caused it.
pub fn rule_tag_index(annotated: &[AnnotatedTransmission]) -> BTreeMap<(usize, usize), Rule> {
    annotated
        .iter()
        .map(|a| ((a.time, a.transmission.from), a.rule))
        .collect()
}

/// Drops the annotations, yielding a plain schedule.
pub fn annotated_to_schedule(annotated: &[AnnotatedTransmission], n: usize) -> Schedule {
    let mut s = Schedule::new(n);
    for a in annotated {
        s.add_transmission(a.time, a.transmission.clone());
    }
    s.trim();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::concurrent_updown;
    use crate::labeling::LabelView;
    use gossip_graph::{RootedTree, NO_PARENT};

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn annotations_forget_to_plain_schedule() {
        for tree in [
            fig5(),
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1, 1]).unwrap(),
            RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap(),
        ] {
            let ann = annotated_concurrent_updown(&tree);
            let mut plain = concurrent_updown(&tree);
            plain.normalize();
            let mut forgotten = annotated_to_schedule(&ann, tree.n());
            forgotten.normalize();
            assert_eq!(forgotten, plain);
        }
    }

    #[test]
    fn rules_fire_inside_their_paper_windows() {
        let tree = fig5();
        let lv = LabelView::new(&tree);
        for a in annotated_concurrent_updown(&tree) {
            let label = tree.label(a.transmission.from);
            let p = lv.params(label);
            let (i, j, k) = (p.i as usize, p.j as usize, p.k as usize);
            let t = a.time;
            match a.rule {
                Rule::U3Lip => assert_eq!(t, 0),
                Rule::U4Rip | Rule::U4D3Merged => {
                    assert!(t >= i.saturating_sub(k) && t <= j - k, "{a:?}")
                }
                Rule::D3Down => assert!(t >= i - k && t <= j - k, "{a:?}"),
                Rule::D3DeferredOwn => assert_eq!(t, j - k + 1, "{a:?}"),
                Rule::D2Forward => {
                    // D2's send windows: [2, i-k-1] and [j-k+3, n+k].
                    let early = t >= 2 && t < i.saturating_sub(k);
                    let late = t >= j - k + 3 && t <= lv.n() + k;
                    assert!(early || late, "{a:?} (i={i}, j={j}, k={k})");
                }
                Rule::D2Deferred => {
                    assert!(t == j - k + 1 || t == j - k + 2, "{a:?}")
                }
            }
        }
    }

    #[test]
    fn lip_count_equals_nonroot_first_children() {
        let tree = fig5();
        let ann = annotated_concurrent_updown(&tree);
        let lips = ann.iter().filter(|a| a.rule == Rule::U3Lip).count();
        // First children in Fig 5: 1, 2, 5, 6, 9, 12, 13 — one per
        // non-leaf... every vertex with children contributes exactly one.
        let expected = (0..16).filter(|&v| !tree.children(v).is_empty()).count();
        assert_eq!(lips, expected);
    }

    #[test]
    fn deferred_rules_exist_on_fig5() {
        let ann = annotated_concurrent_updown(&fig5());
        assert!(ann.iter().any(|a| a.rule == Rule::D2Deferred));
        assert!(ann.iter().any(|a| a.rule == Rule::D3DeferredOwn));
        assert!(ann.iter().any(|a| a.rule == Rule::U4D3Merged));
    }

    #[test]
    fn tags_are_short() {
        for r in [
            Rule::U3Lip,
            Rule::U4Rip,
            Rule::U4D3Merged,
            Rule::D3Down,
            Rule::D3DeferredOwn,
            Rule::D2Forward,
            Rule::D2Deferred,
        ] {
            assert!(r.tag().len() <= 5);
        }
    }
}
