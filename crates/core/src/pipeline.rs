//! The end-to-end planner: arbitrary network → minimum-depth spanning tree
//! → communication schedule, exactly the paper's two-step procedure (§3).

use crate::concurrent::{concurrent_updown, tree_origins};
use crate::simple::simple_gossip;
use crate::telephone::telephone_tree_gossip;
use crate::updown::updown_gossip;
use gossip_graph::{
    is_connected, min_depth_spanning_tree, min_depth_spanning_tree_parallel, ChildOrder, Graph,
    GraphError, RootedTree,
};
use gossip_model::Schedule;

/// Which scheduling algorithm the planner runs on the spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// ConcurrentUpDown — the paper's `n + r` result (default).
    #[default]
    ConcurrentUpDown,
    /// Simple — the `2n + r - 3` warm-up (Lemma 1).
    Simple,
    /// UpDown — the reconstructed two-phase baseline.
    UpDown,
    /// The telephone-model (unicast-only) baseline.
    Telephone,
}

impl Algorithm {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::ConcurrentUpDown => "concurrent-updown",
            Algorithm::Simple => "simple",
            Algorithm::UpDown => "updown",
            Algorithm::Telephone => "telephone",
        }
    }

    /// Runs the algorithm on a rooted tree.
    pub fn schedule(&self, tree: &RootedTree) -> Schedule {
        match self {
            Algorithm::ConcurrentUpDown => concurrent_updown(tree),
            Algorithm::Simple => simple_gossip(tree),
            Algorithm::UpDown => updown_gossip(tree),
            Algorithm::Telephone => telephone_tree_gossip(tree),
        }
    }
}

/// A complete gossip plan for a network.
#[derive(Debug, Clone)]
pub struct GossipPlan {
    /// The minimum-depth spanning tree all communication runs on.
    pub tree: RootedTree,
    /// The communication schedule (vertex space).
    pub schedule: Schedule,
    /// `origin_of_message[m]` = the processor whose message is labeled `m`.
    pub origin_of_message: Vec<usize>,
    /// The network radius `r` (= tree height).
    pub radius: u32,
}

impl GossipPlan {
    /// The schedule's total communication time.
    pub fn makespan(&self) -> usize {
        self.schedule.makespan()
    }

    /// The paper's guarantee for this plan: `n + r`.
    pub fn guarantee(&self) -> usize {
        if self.tree.n() <= 1 {
            0
        } else {
            self.tree.n() + self.radius as usize
        }
    }
}

/// Builder for gossip plans over a network.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::GossipPlanner;
/// use gossip_model::simulate_gossip;
///
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,0)]).unwrap();
/// let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
/// assert_eq!(plan.makespan(), 6 + 3);
/// assert!(plan.makespan() <= plan.guarantee());
/// let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
/// assert!(o.complete);
/// ```
#[derive(Debug, Clone)]
pub struct GossipPlanner<'g> {
    g: &'g Graph,
    algorithm: Algorithm,
    child_order: ChildOrder,
    parallel_tree: bool,
}

impl<'g> GossipPlanner<'g> {
    /// Starts a planner; fails fast on disconnected or empty networks
    /// (gossiping is impossible there).
    pub fn new(g: &'g Graph) -> Result<Self, GraphError> {
        if g.n() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if !is_connected(g) {
            return Err(GraphError::Disconnected);
        }
        Ok(GossipPlanner {
            g,
            algorithm: Algorithm::default(),
            child_order: ChildOrder::default(),
            parallel_tree: false,
        })
    }

    /// Selects the scheduling algorithm (default: ConcurrentUpDown).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the DFS child ordering (default: by vertex id).
    pub fn child_order(mut self, o: ChildOrder) -> Self {
        self.child_order = o;
        self
    }

    /// Uses the rayon-parallel n-source BFS sweep for the spanning tree
    /// (identical output, faster on large dense graphs).
    pub fn parallel_tree_construction(mut self, yes: bool) -> Self {
        self.parallel_tree = yes;
        self
    }

    /// Builds the minimum-depth spanning tree and the schedule.
    pub fn plan(&self) -> Result<GossipPlan, GraphError> {
        let tree = if self.parallel_tree {
            min_depth_spanning_tree_parallel(self.g, self.child_order)?
        } else {
            min_depth_spanning_tree(self.g, self.child_order)?
        };
        Ok(self.plan_on_tree(tree))
    }

    /// Builds a plan on a caller-supplied spanning tree (must span `g`; the
    /// paper reuses one tree across many gossip runs, re-planning only when
    /// the network changes).
    pub fn plan_on_tree(&self, tree: RootedTree) -> GossipPlan {
        debug_assert!(tree.is_spanning_tree_of(self.g));
        let schedule = self.algorithm.schedule(&tree);
        GossipPlan {
            origin_of_message: tree_origins(&tree),
            radius: tree.height(),
            tree,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::simulate_gossip;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn default_plan_meets_guarantee() {
        for n in [3, 6, 11] {
            let g = ring(n);
            let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
            assert_eq!(plan.makespan(), plan.guarantee());
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
            assert!(o.complete);
        }
    }

    #[test]
    fn all_algorithms_complete() {
        let g = ring(8);
        for a in [
            Algorithm::ConcurrentUpDown,
            Algorithm::Simple,
            Algorithm::UpDown,
            Algorithm::Telephone,
        ] {
            let plan = GossipPlanner::new(&g).unwrap().algorithm(a).plan().unwrap();
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
            assert!(o.complete, "{}", a.name());
        }
    }

    #[test]
    fn parallel_tree_gives_same_plan() {
        let g = ring(10);
        let a = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let b = GossipPlanner::new(&g)
            .unwrap()
            .parallel_tree_construction(true)
            .plan()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(GossipPlanner::new(&g).unwrap_err(), GraphError::Disconnected);
        let e = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(GossipPlanner::new(&e).unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn child_order_preserves_makespan() {
        let g = ring(9);
        let a = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let b = GossipPlanner::new(&g)
            .unwrap()
            .child_order(ChildOrder::LargestSubtreeFirst)
            .plan()
            .unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn singleton_plan() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        assert_eq!(plan.makespan(), 0);
        assert_eq!(plan.guarantee(), 0);
    }
}
