//! The end-to-end planner: arbitrary network → minimum-depth spanning tree
//! → communication schedule, exactly the paper's two-step procedure (§3).

use crate::concurrent::{concurrent_updown_recorded, tree_origins};
use crate::fast_planner::{fast_plan_on_tree, FastGossipPlan};
use crate::simple::simple_gossip_recorded;
use crate::telephone::telephone_tree_gossip;
use crate::updown::updown_gossip_recorded;
use gossip_graph::{
    is_connected, min_depth_spanning_tree_fast_recorded, min_depth_spanning_tree_parallel_recorded,
    min_depth_spanning_tree_recorded, ChildOrder, Graph, GraphError, RootedTree,
};
use gossip_model::Schedule;
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};

/// Which scheduling algorithm the planner runs on the spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// ConcurrentUpDown — the paper's `n + r` result (default).
    #[default]
    ConcurrentUpDown,
    /// Simple — the `2n + r - 3` warm-up (Lemma 1).
    Simple,
    /// UpDown — the reconstructed two-phase baseline.
    UpDown,
    /// The telephone-model (unicast-only) baseline.
    Telephone,
}

impl Algorithm {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::ConcurrentUpDown => "concurrent-updown",
            Algorithm::Simple => "simple",
            Algorithm::UpDown => "updown",
            Algorithm::Telephone => "telephone",
        }
    }

    /// Runs the algorithm on a rooted tree.
    pub fn schedule(&self, tree: &RootedTree) -> Schedule {
        self.schedule_recorded(tree, &NoopRecorder)
    }

    /// [`Algorithm::schedule`] with telemetry: each algorithm opens its own
    /// span (with per-phase child spans where the algorithm has phases) and
    /// records `generate/*` counters for the work scheduled.
    pub fn schedule_recorded(&self, tree: &RootedTree, recorder: &dyn Recorder) -> Schedule {
        match self {
            Algorithm::ConcurrentUpDown => concurrent_updown_recorded(tree, recorder),
            Algorithm::Simple => simple_gossip_recorded(tree, recorder),
            Algorithm::UpDown => updown_gossip_recorded(tree, recorder),
            Algorithm::Telephone => {
                let _span = recorder.span("telephone");
                let _phase = gossip_telemetry::profile::phase("generate");
                let schedule = telephone_tree_gossip(tree);
                if recorder.enabled() || gossip_telemetry::profile::active() {
                    let stats = schedule.stats();
                    gossip_telemetry::profile::count("transmissions", stats.transmissions as u64);
                    if recorder.enabled() {
                        recorder.counter("generate/transmissions", stats.transmissions as u64);
                        recorder.counter("generate/deliveries", stats.deliveries as u64);
                        recorder.gauge("generate/makespan", schedule.makespan() as f64);
                    }
                }
                schedule
            }
        }
    }
}

/// A complete gossip plan for a network.
#[derive(Debug, Clone)]
pub struct GossipPlan {
    /// The minimum-depth spanning tree all communication runs on.
    pub tree: RootedTree,
    /// The communication schedule (vertex space).
    pub schedule: Schedule,
    /// `origin_of_message[m]` = the processor whose message is labeled `m`.
    pub origin_of_message: Vec<usize>,
    /// The network radius `r` (= tree height).
    pub radius: u32,
}

impl GossipPlan {
    /// The schedule's total communication time.
    pub fn makespan(&self) -> usize {
        self.schedule.makespan()
    }

    /// The paper's guarantee for this plan: `n + r`.
    pub fn guarantee(&self) -> usize {
        if self.tree.n() <= 1 {
            0
        } else {
            self.tree.n() + self.radius as usize
        }
    }
}

/// Builder for gossip plans over a network.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::GossipPlanner;
/// use gossip_model::simulate_gossip;
///
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,0)]).unwrap();
/// let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
/// assert_eq!(plan.makespan(), 6 + 3);
/// assert!(plan.makespan() <= plan.guarantee());
/// let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
/// assert!(o.complete);
/// ```
#[derive(Clone)]
pub struct GossipPlanner<'g> {
    g: &'g Graph,
    algorithm: Algorithm,
    child_order: ChildOrder,
    parallel_tree: bool,
    recorder: &'g dyn Recorder,
}

impl std::fmt::Debug for GossipPlanner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipPlanner")
            .field("g", &self.g)
            .field("algorithm", &self.algorithm)
            .field("child_order", &self.child_order)
            .field("parallel_tree", &self.parallel_tree)
            .field("recorder_enabled", &self.recorder.enabled())
            .finish()
    }
}

impl<'g> GossipPlanner<'g> {
    /// Starts a planner; fails fast on disconnected or empty networks
    /// (gossiping is impossible there).
    pub fn new(g: &'g Graph) -> Result<Self, GraphError> {
        if g.n() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if !is_connected(g) {
            return Err(GraphError::Disconnected);
        }
        Ok(GossipPlanner {
            g,
            algorithm: Algorithm::default(),
            child_order: ChildOrder::default(),
            parallel_tree: false,
            recorder: &NoopRecorder,
        })
    }

    /// Selects the scheduling algorithm (default: ConcurrentUpDown).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the DFS child ordering (default: by vertex id).
    pub fn child_order(mut self, o: ChildOrder) -> Self {
        self.child_order = o;
        self
    }

    /// Uses the rayon-parallel n-source BFS sweep for the spanning tree
    /// (identical output, faster on large dense graphs).
    pub fn parallel_tree_construction(mut self, yes: bool) -> Self {
        self.parallel_tree = yes;
        self
    }

    /// Attaches a telemetry recorder; all planning stages report spans,
    /// counters, and gauges to it (default: [`NoopRecorder`], which costs
    /// nothing).
    pub fn recorder(mut self, r: &'g dyn Recorder) -> Self {
        self.recorder = r;
        self
    }

    /// Builds the minimum-depth spanning tree and the schedule.
    pub fn plan(&self) -> Result<GossipPlan, GraphError> {
        let _span = self.recorder.span("plan");
        let _phase = gossip_telemetry::profile::phase("plan");
        let tree = if self.parallel_tree {
            min_depth_spanning_tree_parallel_recorded(self.g, self.child_order, self.recorder)?
        } else {
            min_depth_spanning_tree_recorded(self.g, self.child_order, self.recorder)?
        };
        Ok(self.plan_on_tree(tree))
    }

    /// The fast planning path: pruned multi-source bitset sweep for the
    /// tree ([`min_depth_spanning_tree_fast_recorded`]) followed by the
    /// CSR-direct ConcurrentUpDown generator
    /// ([`concurrent_updown_flat_recorded`](crate::concurrent_updown_flat_recorded)).
    /// On the same tree the resulting schedule is byte-identical to
    /// flattening [`plan`](GossipPlanner::plan)'s; the tree itself may
    /// differ from the reference construction only when root-candidate
    /// pruning drops an equal-depth tie.
    ///
    /// # Panics
    ///
    /// The fast path implements ConcurrentUpDown only; panics if another
    /// [`algorithm`](GossipPlanner::algorithm) was selected.
    pub fn plan_fast(&self) -> Result<FastGossipPlan, GraphError> {
        assert_eq!(
            self.algorithm,
            Algorithm::ConcurrentUpDown,
            "plan_fast implements ConcurrentUpDown only"
        );
        let _span = self.recorder.span("plan_fast");
        let _phase = gossip_telemetry::profile::phase("plan");
        let tree = min_depth_spanning_tree_fast_recorded(self.g, self.child_order, self.recorder)?;
        Ok(self.plan_fast_on_tree(tree))
    }

    /// Builds a fast-path plan on a caller-supplied spanning tree.
    pub fn plan_fast_on_tree(&self, tree: RootedTree) -> FastGossipPlan {
        debug_assert!(tree.is_spanning_tree_of(self.g));
        let plan = fast_plan_on_tree(tree, self.recorder);
        if self.recorder.enabled() {
            self.recorder.gauge("plan/radius", plan.radius as f64);
            self.recorder.gauge("plan/makespan", plan.makespan() as f64);
        }
        plan
    }

    /// Builds a plan on a caller-supplied spanning tree (must span `g`; the
    /// paper reuses one tree across many gossip runs, re-planning only when
    /// the network changes).
    pub fn plan_on_tree(&self, tree: RootedTree) -> GossipPlan {
        debug_assert!(tree.is_spanning_tree_of(self.g));
        let schedule = self.algorithm.schedule_recorded(&tree, self.recorder);
        let plan = GossipPlan {
            origin_of_message: tree_origins(&tree),
            radius: tree.height(),
            tree,
            schedule,
        };
        if self.recorder.enabled() {
            self.recorder.gauge("plan/radius", plan.radius as f64);
            self.recorder.gauge("plan/makespan", plan.makespan() as f64);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::simulate_gossip;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn default_plan_meets_guarantee() {
        for n in [3, 6, 11] {
            let g = ring(n);
            let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
            assert_eq!(plan.makespan(), plan.guarantee());
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
            assert!(o.complete);
        }
    }

    #[test]
    fn all_algorithms_complete() {
        let g = ring(8);
        for a in [
            Algorithm::ConcurrentUpDown,
            Algorithm::Simple,
            Algorithm::UpDown,
            Algorithm::Telephone,
        ] {
            let plan = GossipPlanner::new(&g).unwrap().algorithm(a).plan().unwrap();
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
            assert!(o.complete, "{}", a.name());
        }
    }

    #[test]
    fn parallel_tree_gives_same_plan() {
        let g = ring(10);
        let a = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let b = GossipPlanner::new(&g)
            .unwrap()
            .parallel_tree_construction(true)
            .plan()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn fast_plan_matches_reference() {
        use gossip_model::{CommModel, FlatSchedule};
        for n in [3, 6, 11, 24] {
            let g = ring(n);
            let planner = GossipPlanner::new(&g).unwrap();
            let reference = planner.plan().unwrap();
            let fast = planner.plan_fast().unwrap();
            assert_eq!(fast.radius, reference.radius);
            assert_eq!(fast.makespan(), reference.makespan());
            assert!(fast.makespan() <= fast.guarantee());
            fast.schedule.validate(&g, CommModel::Multicast, n).unwrap();
            // Equal roots imply byte-identical schedules; the fast sweep may
            // only diverge on equal-depth root ties.
            if fast.tree == reference.tree {
                assert_eq!(
                    fast.schedule,
                    FlatSchedule::from_schedule(&reference.schedule)
                );
            } else {
                assert_eq!(fast.tree.height(), reference.tree.height());
            }
        }
    }

    #[test]
    fn fast_plan_singleton() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan_fast().unwrap();
        assert_eq!(plan.makespan(), 0);
        assert_eq!(plan.guarantee(), 0);
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            GossipPlanner::new(&g).unwrap_err(),
            GraphError::Disconnected
        );
        let e = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(GossipPlanner::new(&e).unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn child_order_preserves_makespan() {
        let g = ring(9);
        let a = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let b = GossipPlanner::new(&g)
            .unwrap()
            .child_order(ChildOrder::LargestSubtreeFirst)
            .plan()
            .unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn singleton_plan() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        assert_eq!(plan.makespan(), 0);
        assert_eq!(plan.guarantee(), 0);
    }
}
