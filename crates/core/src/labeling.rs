//! Label-space view of a rooted tree.
//!
//! The paper's algorithms never mention original vertex ids: after the DFS
//! relabeling, every rule is stated in terms of a vertex's label `i`, its
//! subtree range `[i, j]`, its level `k`, and its parent's label `i'` and
//! range end `j'`. [`LabelView`] precomputes exactly those quantities,
//! indexed by label, plus the mapping back to original vertex ids that the
//! emitted schedules use.

use gossip_graph::RootedTree;

/// Per-label scheduling parameters (the paper's `i`, `j`, `k`, `i'`, `j'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexParams {
    /// The vertex's DFS label `i` (also its message's id).
    pub i: u32,
    /// The largest label `j` in the vertex's subtree.
    pub j: u32,
    /// The vertex's level `k` (root = 0).
    pub k: u32,
    /// The parent's label `i'`; `u32::MAX` for the root.
    pub parent_i: u32,
    /// The parent's range end `j'`; `u32::MAX` for the root.
    pub parent_j: u32,
}

impl VertexParams {
    /// Whether this vertex is the root.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.parent_i == u32::MAX
    }

    /// Whether this vertex is a leaf (`i == j`: its subtree is itself).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.i == self.j
    }

    /// Whether this vertex's own message is the *lookahead-in-parent*
    /// message: `i = i' + 1`, i.e. this is its parent's first child in DFS
    /// order. The paper's `w` (number of lip-messages) is 1 here, else 0.
    #[inline]
    pub fn has_lip(&self) -> bool {
        !self.is_root() && self.i == self.parent_i + 1
    }

    /// The paper's `w`: the number of lip-messages at this vertex (0 or 1).
    #[inline]
    pub fn w(&self) -> u32 {
        self.has_lip() as u32
    }

    /// The first *remaining-in-parent* message, `max(i, i' + 2)`; rip
    /// messages are `rip_start()..=j` (empty when `rip_start() > j`).
    #[inline]
    pub fn rip_start(&self) -> u32 {
        debug_assert!(!self.is_root());
        self.i.max(self.parent_i + 2)
    }
}

/// A rooted tree re-indexed by DFS label, with per-label parameters and the
/// label ↔ vertex translation used to emit schedules in vertex space.
#[derive(Debug, Clone)]
pub struct LabelView {
    n: usize,
    params: Vec<VertexParams>,
    /// Children (as labels, ascending — DFS order) of each label.
    children: Vec<Vec<u32>>,
    /// Original vertex id of each label.
    vertex_of_label: Vec<u32>,
    /// Tree height (= max level).
    height: u32,
}

impl LabelView {
    /// Builds the label-space view of `tree`.
    pub fn new(tree: &RootedTree) -> Self {
        let _phase = gossip_telemetry::profile::phase("label");
        let n = tree.n();
        let mut params = Vec::with_capacity(n);
        let mut children = vec![Vec::new(); n];
        let mut vertex_of_label = Vec::with_capacity(n);
        for label in 0..n as u32 {
            let v = tree.vertex_of_label(label);
            vertex_of_label.push(v as u32);
            let (i, j) = tree.subtree_range(v);
            debug_assert_eq!(i, label);
            let (parent_i, parent_j) = match tree.parent(v) {
                Some(p) => tree.subtree_range(p),
                None => (u32::MAX, u32::MAX),
            };
            params.push(VertexParams {
                i,
                j,
                k: tree.level(v),
                parent_i,
                parent_j,
            });
            children[label as usize] = tree
                .children(v)
                .iter()
                .map(|&c| tree.label(c as usize))
                .collect();
        }
        LabelView {
            n,
            params,
            children,
            vertex_of_label,
            height: tree.height(),
        }
    }

    /// Number of vertices (= messages).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tree height (the `r` in the `n + r` bound when the tree is a
    /// minimum-depth spanning tree).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Scheduling parameters of the vertex with label `i`.
    #[inline]
    pub fn params(&self, label: u32) -> VertexParams {
        self.params[label as usize]
    }

    /// Children labels of the vertex with label `i`, in DFS order (which in
    /// label space is simply ascending).
    #[inline]
    pub fn children(&self, label: u32) -> &[u32] {
        &self.children[label as usize]
    }

    /// Original vertex id of `label`.
    #[inline]
    pub fn vertex(&self, label: u32) -> usize {
        self.vertex_of_label[label as usize] as usize
    }

    /// The origin table for the simulator: message `m` originates at
    /// `origins()[m]` (the original vertex whose label is `m`).
    pub fn origins(&self) -> Vec<usize> {
        self.vertex_of_label.iter().map(|&v| v as usize).collect()
    }

    /// The child of `label` whose subtree contains message `m`, if any.
    pub fn child_containing(&self, label: u32, m: u32) -> Option<u32> {
        let kids = &self.children[label as usize];
        // Children ranges partition (i, j]; in label space the child with
        // the largest start <= m contains m iff m <= its range end.
        let idx = kids.partition_point(|&c| c <= m);
        if idx == 0 {
            return None;
        }
        let c = kids[idx - 1];
        (m <= self.params[c as usize].j).then_some(c)
    }

    /// Labels in `0..n` (ascending label = DFS preorder).
    pub fn labels(&self) -> impl Iterator<Item = u32> {
        0..self.n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{RootedTree, NO_PARENT};

    /// The reconstructed Fig 5 tree (vertex id == label by construction).
    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn params_of_fig5_vertices() {
        let lv = LabelView::new(&fig5());
        let p0 = lv.params(0);
        assert!(p0.is_root());
        assert_eq!((p0.i, p0.j, p0.k), (0, 15, 0));

        let p4 = lv.params(4);
        assert_eq!((p4.i, p4.j, p4.k), (4, 10, 1));
        assert_eq!((p4.parent_i, p4.parent_j), (0, 15));
        assert!(!p4.has_lip()); // 4 != 0 + 1
        assert_eq!(p4.rip_start(), 4);

        let p1 = lv.params(1);
        assert!(p1.has_lip()); // 1 == 0 + 1
        assert_eq!(p1.w(), 1);
        assert_eq!(p1.rip_start(), 2);

        let p8 = lv.params(8);
        assert_eq!((p8.i, p8.j, p8.k), (8, 10, 2));
        assert!(!p8.has_lip()); // parent 4's first child is 5
        assert_eq!(p8.rip_start(), 8);

        let p5 = lv.params(5);
        assert!(p5.has_lip()); // 5 == 4 + 1
    }

    #[test]
    fn children_in_label_space() {
        let lv = LabelView::new(&fig5());
        assert_eq!(lv.children(0), &[1, 4, 11]);
        assert_eq!(lv.children(4), &[5, 8]);
        assert_eq!(lv.children(3), &[] as &[u32]);
    }

    #[test]
    fn child_containing() {
        let lv = LabelView::new(&fig5());
        assert_eq!(lv.child_containing(0, 9), Some(4));
        assert_eq!(lv.child_containing(0, 0), None);
        assert_eq!(lv.child_containing(4, 7), Some(5));
        assert_eq!(lv.child_containing(4, 8), Some(8));
        assert_eq!(lv.child_containing(4, 11), None);
    }

    #[test]
    fn origins_identity_when_ids_equal_labels() {
        let lv = LabelView::new(&fig5());
        assert_eq!(lv.origins(), (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn label_view_with_permuted_ids() {
        // A path 2 - 0 - 1 rooted at 2: labels 2->0, 0->1, 1->2.
        let t = RootedTree::from_parents(2, &[2, 0, NO_PARENT]).unwrap();
        let lv = LabelView::new(&t);
        assert_eq!(lv.vertex(0), 2);
        assert_eq!(lv.vertex(1), 0);
        assert_eq!(lv.vertex(2), 1);
        assert_eq!(lv.origins(), vec![2, 0, 1]);
        let p1 = lv.params(1);
        assert_eq!((p1.i, p1.j, p1.k), (1, 2, 1));
    }

    #[test]
    fn leaf_detection() {
        let lv = LabelView::new(&fig5());
        assert!(lv.params(3).is_leaf());
        assert!(lv.params(15).is_leaf());
        assert!(!lv.params(12).is_leaf());
    }
}
