//! Algorithm **ConcurrentUpDown**: the paper's main result (§3.2,
//! Theorem 1) — a gossip schedule of total communication time `n + r` on any
//! tree with `n` vertices and height `r`.
//!
//! The schedule is the conflict-free overlay of two per-vertex protocols run
//! at every vertex `v` (label `i`, subtree range `[i, j]`, level `k`,
//! parent's label `i'`):
//!
//! **Propagate-Up** (gets every message to the root by time `n - 1`):
//! - (U3) at time 0, send the *lip-message* (own message `i`, when
//!   `i = i' + 1`) to the parent;
//! - (U4) send each *rip-message* `m ∈ [max(i, i'+2), j]` to the parent at
//!   time `m - k`.
//!
//! **Propagate-Down** (pushes everything to the leaves):
//! - (D3) for `m ∈ [i, j]`, at time `m - k` multicast `m` to all children
//!   except the one whose subtree contains `m`; exception: when `i = k`
//!   (leftmost-path vertices, including the root), the own message `i` is
//!   sent at time `j - k + 1` instead of `i - k` (sending at `i - k` would
//!   collide with lookahead receives one level down);
//! - (D2) forward each *o-message* received from the parent at the time it
//!   arrives — except arrivals at times `i - k` and `i - k + 1`, which are
//!   deferred to `j - k + 1` and `j - k + 2` (the vertex is busy multicasting
//!   its own subtree's messages during `[i - k, j - k]`).
//!
//! Steps (U1), (U2), and (D1) of the paper are the *receive* sides of the
//! above and are implied. When U4 and D3 fire at the same time they carry
//! the same message `m`, so they merge into a single multicast to
//! `{parent} ∪ children` — the observation the paper's Theorem 1 proof
//! hinges on.

use crate::labeling::LabelView;
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};
use std::collections::BTreeMap;

/// A pending multicast by one vertex at one time, accumulated while the two
/// protocols are overlaid.
#[derive(Debug, Clone)]
struct PendingSend {
    msg: u32,
    to_parent: bool,
    /// Destination children, as labels.
    child_dests: Vec<u32>,
}

/// Builds the ConcurrentUpDown schedule for `tree`.
///
/// The returned schedule is in *vertex space* (transmissions name original
/// vertex ids); message `m` is the one originating at the vertex with DFS
/// label `m`, i.e. the origin table is [`LabelView::origins`] /
/// [`tree_origins`].
///
/// The makespan is exactly `n + r` for `n >= 2` (and 0 for `n = 1`), where
/// `r` is the height of `tree`.
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, min_depth_spanning_tree, ChildOrder};
/// use gossip_core::{concurrent_updown, tree_origins};
/// use gossip_model::simulate_gossip;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
/// let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
/// let schedule = concurrent_updown(&tree);
/// assert_eq!(schedule.makespan(), 5 + 2); // n + r
/// let outcome = simulate_gossip(&g, &schedule, &tree_origins(&tree)).unwrap();
/// assert!(outcome.complete);
/// ```
pub fn concurrent_updown(tree: &RootedTree) -> Schedule {
    concurrent_updown_recorded(tree, &NoopRecorder)
}

/// [`concurrent_updown`] with telemetry: a `concurrent_updown` span with
/// `labeling` / `overlay` child spans, and `generate/*` counters for the
/// transmissions, deliveries, and merged U4+D3 multicasts scheduled.
pub fn concurrent_updown_recorded(tree: &RootedTree, recorder: &dyn Recorder) -> Schedule {
    let _span = recorder.span("concurrent_updown");
    let _phase = gossip_telemetry::profile::phase("generate");
    let lv = {
        let _s = recorder.span("labeling");
        LabelView::new(tree)
    };
    let n = lv.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }
    let _overlay = recorder.span("overlay");
    let _overlay_phase = gossip_telemetry::profile::phase("overlay");
    let mut merged_multicasts = 0u64;

    // recv_from_parent[label] = (arrival time, message) pairs, filled while
    // the parent (smaller label: DFS preorder) is processed.
    let mut recv_from_parent: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];

    for label in lv.labels() {
        let p = lv.params(label);
        let (i, j, k) = (p.i as usize, p.j as usize, p.k as usize);
        let mut sends: BTreeMap<usize, PendingSend> = BTreeMap::new();

        let mut add = |t: usize, msg: u32, to_parent: bool, child_dests: Vec<u32>| {
            sends
                .entry(t)
                .and_modify(|e| {
                    assert_eq!(
                        e.msg, msg,
                        "vertex {label} scheduled two messages at time {t}"
                    );
                    e.to_parent |= to_parent;
                    e.child_dests.extend_from_slice(&child_dests);
                })
                .or_insert(PendingSend {
                    msg,
                    to_parent,
                    child_dests,
                });
        };

        if !p.is_root() {
            // (U3): the lip-message goes up at time 0.
            if p.has_lip() {
                add(0, p.i, true, Vec::new());
            }
            // (U4): rip-messages go up at time m - k.
            for m in p.rip_start()..=p.j {
                add(m as usize - k, m, true, Vec::new());
            }
        }

        if !p.is_leaf() {
            // (D3): own-subtree messages go down at time m - k, skipping the
            // child that already has them; the i = k exception defers the own
            // message to time j - k + 1.
            for m in i as u32..=j as u32 {
                let t = if m as usize == i && i == k {
                    j - k + 1
                } else {
                    m as usize - k
                };
                let dests: Vec<u32> = lv
                    .children(label)
                    .iter()
                    .copied()
                    .filter(|&c| lv.child_containing(label, m) != Some(c))
                    .collect();
                if !dests.is_empty() {
                    add(t, m, false, dests);
                }
            }
            // (D2): forward o-messages from the parent on arrival, with the
            // two deferred slots.
            for &(t_arrive, m) in &recv_from_parent[label as usize] {
                debug_assert!(
                    (m as usize) < i || (m as usize) > j,
                    "vertex {label} received own-subtree message {m} from its parent"
                );
                let t_send = if t_arrive == i - k {
                    j - k + 1
                } else if t_arrive == i - k + 1 {
                    j - k + 2
                } else {
                    t_arrive
                };
                add(t_send, m, false, lv.children(label).to_vec());
            }
        }

        // Emit this vertex's transmissions and propagate arrivals downward.
        let vertex = lv.vertex(label);
        for (t, ev) in sends {
            let mut dests: Vec<usize> = Vec::with_capacity(ev.child_dests.len() + 1);
            if ev.to_parent {
                if !ev.child_dests.is_empty() {
                    merged_multicasts += 1;
                }
                let parent_label = p.parent_i;
                dests.push(lv.vertex(parent_label));
            }
            for &c in &ev.child_dests {
                recv_from_parent[c as usize].push((t + 1, ev.msg));
                dests.push(lv.vertex(c));
            }
            schedule.add_transmission(t, Transmission::new(ev.msg, vertex, dests));
        }
    }

    schedule.trim();
    if recorder.enabled() || gossip_telemetry::profile::active() {
        let stats = schedule.stats();
        gossip_telemetry::profile::count("transmissions", stats.transmissions as u64);
        if recorder.enabled() {
            recorder.counter("generate/transmissions", stats.transmissions as u64);
            recorder.counter("generate/deliveries", stats.deliveries as u64);
            recorder.counter("generate/merged_multicasts", merged_multicasts);
            recorder.gauge("generate/makespan", schedule.makespan() as f64);
        }
    }
    schedule
}

/// The origin table matching schedules built from `tree`: message `m`
/// originates at the vertex whose DFS label is `m`.
pub fn tree_origins(tree: &RootedTree) -> Vec<usize> {
    (0..tree.n() as u32)
        .map(|m| tree.vertex_of_label(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::{simulate_gossip, vertex_trace};

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    fn run_and_check(tree: &RootedTree) -> Schedule {
        let schedule = concurrent_updown(tree);
        let g = tree.to_graph();
        let outcome = simulate_gossip(&g, &schedule, &tree_origins(tree)).unwrap();
        assert!(outcome.complete, "gossip incomplete on {tree:?}");
        schedule
    }

    #[test]
    fn fig5_makespan_is_n_plus_r() {
        let tree = fig5();
        let s = run_and_check(&tree);
        assert_eq!(s.makespan(), 16 + 3);
    }

    /// Paper Table 1: the root's schedule. "Message i is received at time i
    /// and it is sent at time i" (for i >= 1), message 0 sent at time 16.
    #[test]
    fn paper_table_1() {
        let tree = fig5();
        let s = concurrent_updown(&tree);
        let tr = vertex_trace(&s, &tree, 0);
        for m in 1..=15u32 {
            assert_eq!(tr.recv_from_child[m as usize], Some(m), "recv {m}");
            assert_eq!(tr.send_to_children[m as usize], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_children[16], Some(0));
        assert_eq!(tr.recv_from_parent.iter().flatten().count(), 0);
        assert_eq!(tr.send_to_parent.iter().flatten().count(), 0);
        assert_eq!(tr.recv_from_child[16], None);
    }

    /// Paper Table 2: vertex with message 1 (i = 1, j = 3, k = 1).
    #[test]
    fn paper_table_2() {
        let tree = fig5();
        let s = concurrent_updown(&tree);
        let tr = vertex_trace(&s, &tree, 1);

        // Receive from Parent: 4..15 at times 5..16, then 0 at 17.
        let mut expected_rp = [None; 19];
        for m in 4..=15u32 {
            expected_rp[m as usize + 1] = Some(m);
        }
        expected_rp[17] = Some(0);
        assert_eq!(tr.recv_from_parent[..=17], expected_rp[..=17]);

        // Receive from Child: 2 at time 1, 3 at time 2.
        assert_eq!(tr.recv_from_child[1], Some(2));
        assert_eq!(tr.recv_from_child[2], Some(3));
        assert_eq!(tr.recv_from_child.iter().flatten().count(), 2);

        // Send to Parent: 1, 2, 3 at times 0, 1, 2.
        assert_eq!(tr.send_to_parent[0], Some(1));
        assert_eq!(tr.send_to_parent[1], Some(2));
        assert_eq!(tr.send_to_parent[2], Some(3));
        assert_eq!(tr.send_to_parent.iter().flatten().count(), 3);

        // Send to Child: 2 at 1, 3 at 2, 1 at 3, then 4..15 at 5..16, 0 at 17.
        assert_eq!(tr.send_to_children[1], Some(2));
        assert_eq!(tr.send_to_children[2], Some(3));
        assert_eq!(tr.send_to_children[3], Some(1));
        assert_eq!(tr.send_to_children[4], None);
        for m in 4..=15u32 {
            assert_eq!(tr.send_to_children[m as usize + 1], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_children[17], Some(0));
    }

    /// Paper Table 3: vertex with message 4 (i = 4, j = 10, k = 1);
    /// messages 2 and 3 are the delayed ones.
    #[test]
    fn paper_table_3() {
        let tree = fig5();
        let s = concurrent_updown(&tree);
        let tr = vertex_trace(&s, &tree, 4);

        // Receive from Parent: 1, 2, 3 at times 2, 3, 4; 11..15 at 12..16;
        // 0 at 17.
        assert_eq!(tr.recv_from_parent[2], Some(1));
        assert_eq!(tr.recv_from_parent[3], Some(2));
        assert_eq!(tr.recv_from_parent[4], Some(3));
        for m in 11..=15u32 {
            assert_eq!(tr.recv_from_parent[m as usize + 1], Some(m), "recv {m}");
        }
        assert_eq!(tr.recv_from_parent[17], Some(0));
        assert_eq!(tr.recv_from_parent.iter().flatten().count(), 9);

        // Receive from Child: 5 at time 1 (lookahead), 6..10 at 5..9.
        assert_eq!(tr.recv_from_child[1], Some(5));
        for m in 6..=10u32 {
            assert_eq!(tr.recv_from_child[m as usize - 1], Some(m), "recv {m}");
        }

        // Send to Parent: 4..10 at times 3..9.
        for m in 4..=10u32 {
            assert_eq!(tr.send_to_parent[m as usize - 1], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_parent.iter().flatten().count(), 7);

        // Send to Child: 1 at 2; 4..10 at 3..9; the delayed 2, 3 at 10, 11;
        // 11..15 at 12..16; 0 at 17.
        assert_eq!(tr.send_to_children[2], Some(1));
        for m in 4..=10u32 {
            assert_eq!(tr.send_to_children[m as usize - 1], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_children[10], Some(2));
        assert_eq!(tr.send_to_children[11], Some(3));
        for m in 11..=15u32 {
            assert_eq!(tr.send_to_children[m as usize + 1], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_children[17], Some(0));
    }

    /// Paper Table 4: vertex with message 8 (i = 8, j = 10, k = 2);
    /// messages 6 and 7 are the delayed ones.
    #[test]
    fn paper_table_4() {
        let tree = fig5();
        let s = concurrent_updown(&tree);
        let tr = vertex_trace(&s, &tree, 8);

        // Receive from Parent: 1 at 3; 4, 5 at 4, 5; 6, 7 at 6, 7;
        // 2, 3 at 11, 12; 11..15 at 13..17; 0 at 18.
        assert_eq!(tr.recv_from_parent[3], Some(1));
        assert_eq!(tr.recv_from_parent[4], Some(4));
        assert_eq!(tr.recv_from_parent[5], Some(5));
        assert_eq!(tr.recv_from_parent[6], Some(6));
        assert_eq!(tr.recv_from_parent[7], Some(7));
        assert_eq!(tr.recv_from_parent[11], Some(2));
        assert_eq!(tr.recv_from_parent[12], Some(3));
        for m in 11..=15u32 {
            assert_eq!(tr.recv_from_parent[m as usize + 2], Some(m), "recv {m}");
        }
        assert_eq!(tr.recv_from_parent[18], Some(0));

        // Receive from Child: 9 at time 1 (lookahead), 10 at time 8.
        assert_eq!(tr.recv_from_child[1], Some(9));
        assert_eq!(tr.recv_from_child[8], Some(10));
        assert_eq!(tr.recv_from_child.iter().flatten().count(), 2);

        // Send to Parent: 8, 9, 10 at times 6, 7, 8.
        assert_eq!(tr.send_to_parent[6], Some(8));
        assert_eq!(tr.send_to_parent[7], Some(9));
        assert_eq!(tr.send_to_parent[8], Some(10));
        assert_eq!(tr.send_to_parent.iter().flatten().count(), 3);

        // Send to Child: forwarded 1, 4, 5 at 3, 4, 5; own 8, 9, 10 at
        // 6, 7, 8; deferred 6, 7 at 9, 10; 2, 3 at 11, 12; 11..15 at
        // 13..17; 0 at 18.
        assert_eq!(tr.send_to_children[3], Some(1));
        assert_eq!(tr.send_to_children[4], Some(4));
        assert_eq!(tr.send_to_children[5], Some(5));
        assert_eq!(tr.send_to_children[6], Some(8));
        assert_eq!(tr.send_to_children[7], Some(9));
        assert_eq!(tr.send_to_children[8], Some(10));
        assert_eq!(tr.send_to_children[9], Some(6));
        assert_eq!(tr.send_to_children[10], Some(7));
        assert_eq!(tr.send_to_children[11], Some(2));
        assert_eq!(tr.send_to_children[12], Some(3));
        for m in 11..=15u32 {
            assert_eq!(tr.send_to_children[m as usize + 2], Some(m), "send {m}");
        }
        assert_eq!(tr.send_to_children[18], Some(0));
    }

    #[test]
    fn singleton_and_pair() {
        let t1 = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(concurrent_updown(&t1).makespan(), 0);

        let t2 = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        let s = run_and_check(&t2);
        assert_eq!(s.makespan(), 2 + 1);
    }

    #[test]
    fn paths_various_roots() {
        // Path of 7 rooted at the center: r = 3.
        let t = RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap();
        let s = run_and_check(&t);
        assert_eq!(s.makespan(), 7 + 3);

        // Path of 5 rooted at an end: r = 4 (not minimum depth; bound still
        // holds relative to tree height).
        let t = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3]).unwrap();
        let s = run_and_check(&t);
        assert_eq!(s.makespan(), 5 + 4);
    }

    #[test]
    fn star_makespan() {
        let n = 9;
        let mut p = vec![0u32; n];
        p[0] = NO_PARENT;
        let t = RootedTree::from_parents(0, &p).unwrap();
        let s = run_and_check(&t);
        assert_eq!(s.makespan(), n + 1);
    }

    #[test]
    fn deep_caterpillar_completes() {
        // Spine 0-1-2-3, one leaf per spine vertex.
        let t = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 0, 1, 2, 3]).unwrap();
        let s = run_and_check(&t);
        assert_eq!(s.makespan(), 8 + t.height() as usize);
    }

    #[test]
    fn permuted_vertex_ids() {
        // Same shape as a 5-path rooted at center but with scrambled ids:
        // the schedule must still be valid on the tree's own graph.
        let t = RootedTree::from_parents(2, &[2, 0, NO_PARENT, 2, 3]).unwrap();
        let s = run_and_check(&t);
        assert_eq!(s.makespan(), 5 + 2);
    }

    #[test]
    fn every_processor_sends_at_most_once_per_round() {
        // The overlay property: U4 and D3 merge rather than double-send.
        let tree = fig5();
        let s = concurrent_updown(&tree);
        for (t, round) in s.rounds.iter().enumerate() {
            let mut senders: Vec<usize> = round.transmissions.iter().map(|x| x.from).collect();
            senders.sort_unstable();
            let before = senders.len();
            senders.dedup();
            assert_eq!(before, senders.len(), "duplicate sender in round {t}");
        }
    }

    #[test]
    fn completion_exactly_at_n_plus_r() {
        // Not earlier: the message 0 chain is the critical path.
        let tree = fig5();
        let s = concurrent_updown(&tree);
        let g = tree.to_graph();
        let outcome = simulate_gossip(&g, &s, &tree_origins(&tree)).unwrap();
        assert_eq!(outcome.completion_time, Some(19));
    }
}
