//! Optimal gossiping on straight-line networks: the paper's §4 remark,
//! made constructive.
//!
//! "One may improve the performance of our algorithm by one unit, but the
//! protocol for each processor will not be uniform and the algorithm will
//! be much more complex. The reason is that one needs to alternate the
//! delivery of messages from different subtrees."
//!
//! The paper claims the `n + r - 1` schedule exists but gives no
//! construction, and the structure really is irregular: simple per-round
//! greedy rules (earliest-deadline-first under several tie-breaking
//! policies) already miss the optimum at `n = 5`. This module therefore
//! *searches* for the schedule exactly, in a state space tailored to lines:
//! the state is the pair of **propagation fronts** per message (how far
//! left and right it has spread — on a path, every hold set is a contiguous
//! interval). Moving more fronts never hurts (fronts are monotone), so only
//! maximal move-sets are enumerated; a slack cut kills any branch where a
//! front can no longer meet its deadline; a transposition table caches
//! refuted states. The search resolves every `n <= MAX_LINE_N` quickly, and
//! the resulting schedules are machine-verified optimal
//! (`n + ⌊n/2⌋ - 1`, matching the §1 lower bound on odd lines).

use gossip_model::{Schedule, Transmission};
use std::collections::HashMap;

/// Largest line the exact scheduler accepts. The search cost grows
/// steeply (sub-second through `n = 6`, tens of seconds at `n = 7`), and
/// `n = 5` (= the paper's `P_5`) already exhibits the full phenomenon, so
/// the public API stops where interactive use stays snappy.
pub const MAX_LINE_N: usize = 6;

/// Builds a gossip schedule for the path `0 — 1 — … — n-1` of exactly
/// `n + ⌊n/2⌋ - 1` rounds (`= n + r - 1` on odd lines; one round better
/// than the topology-oblivious `n + r` algorithm), with message ids equal
/// to vertex ids. For `n = 2` the schedule is the single-round swap.
///
/// # Panics
///
/// Panics if `n < 2` or `n > MAX_LINE_N`.
///
/// # Examples
///
/// ```
/// use gossip_core::line_gossip_schedule;
/// use gossip_model::{simulate_gossip, identity_origins};
/// use gossip_graph::Graph;
///
/// let n = 5;
/// let s = line_gossip_schedule(n);
/// assert_eq!(s.makespan(), n + n / 2 - 1); // beats the generic n + r by one
/// let g = Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
/// assert!(simulate_gossip(&g, &s, &identity_origins(n)).unwrap().complete);
/// ```
pub fn line_gossip_schedule(n: usize) -> Schedule {
    assert!(n >= 2, "a line needs at least two processors");
    assert!(
        n <= MAX_LINE_N,
        "the exact line scheduler supports n <= {MAX_LINE_N}, got {n}"
    );
    if n == 2 {
        let mut s = Schedule::new(2);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(0, Transmission::unicast(1, 1, 0));
        return s;
    }
    let target = n + n / 2 - 1;
    let mut search = LineSearch::new(n, target);
    let found = search.dfs(&LineState::initial(n), 0);
    assert!(
        found,
        "n + r - 1 line schedule must exist (paper §4); n = {n}"
    );
    let mut schedule = Schedule::new(n);
    search.witness.reverse();
    for (t, round) in search.witness.iter().enumerate() {
        for &(from, msg, ref dests) in round {
            schedule.add_transmission(t, Transmission::new(msg, from, dests.clone()));
        }
    }
    schedule.trim();
    schedule
}

/// Knowledge intervals: message `o` is held by exactly the processors in
/// `[left[o], right[o]]` (always an interval on a path).
#[derive(Debug, Clone, PartialEq, Eq)]
struct LineState {
    left: Vec<u8>,
    right: Vec<u8>,
}

impl LineState {
    fn initial(n: usize) -> Self {
        LineState {
            left: (0..n as u8).collect(),
            right: (0..n as u8).collect(),
        }
    }

    fn done(&self, n: usize) -> bool {
        self.left.iter().all(|&l| l == 0) && self.right.iter().all(|&r| r as usize == n - 1)
    }

    fn key(&self) -> u128 {
        let mut k = 0u128;
        for (i, (&l, &r)) in self.left.iter().zip(&self.right).enumerate() {
            k |= (l as u128) << (8 * i);
            k |= (r as u128) << (8 * i + 4);
        }
        k
    }

    /// Largest remaining travel distance over all fronts.
    fn worst_remaining(&self, n: usize) -> usize {
        let l = self.left.iter().map(|&l| l as usize).max().unwrap_or(0);
        let r = self
            .right
            .iter()
            .map(|&r| n - 1 - r as usize)
            .max()
            .unwrap_or(0);
        l.max(r)
    }
}

type Round = Vec<(usize, u32, Vec<usize>)>;

struct LineSearch {
    n: usize,
    target: usize,
    /// `memo[state]` = largest remaining-round budget proven insufficient.
    memo: HashMap<u128, u32>,
    /// Rounds of the successful schedule, deepest first (unwind order).
    witness: Vec<Round>,
}

impl LineSearch {
    fn new(n: usize, target: usize) -> Self {
        LineSearch {
            n,
            target,
            memo: HashMap::new(),
            witness: Vec::new(),
        }
    }

    fn dfs(&mut self, state: &LineState, t: usize) -> bool {
        let n = self.n;
        if state.done(n) {
            return true;
        }
        if t >= self.target {
            return false;
        }
        let remaining = self.target - t;
        if state.worst_remaining(n) > remaining {
            return false;
        }
        // Receive-demand cut: vertex v still needs one receive per message
        // it lacks; it can take at most one per round.
        for v in 0..n {
            let missing = state
                .left
                .iter()
                .zip(&state.right)
                .filter(|&(&l, &r)| v < l as usize || v > r as usize)
                .count();
            if missing > remaining {
                return false;
            }
        }
        let key = state.key();
        if let Some(&failed) = self.memo.get(&key) {
            if remaining as u32 <= failed {
                return false;
            }
        }

        // Receivers with at least one front one hop away, most urgent
        // (least best-candidate slack) first.
        let mut receivers: Vec<usize> = (0..n)
            .filter(|&w| {
                state.right.iter().any(|&r| (r as usize) + 1 == w)
                    || state.left.iter().any(|&l| l as usize == w + 1)
            })
            .collect();
        let urgency = |w: usize| -> usize {
            let mut best = usize::MAX;
            for (&l, &r) in state.left.iter().zip(&state.right) {
                if (r as usize) + 1 == w {
                    best = best.min((self.target - t - 1).saturating_sub(n - 1 - w));
                }
                if w + 1 == l as usize {
                    best = best.min((self.target - t - 1).saturating_sub(w));
                }
            }
            best
        };
        receivers.sort_by_key(|&w| urgency(w));
        let mut sending: Vec<Option<u32>> = vec![None; n];
        let mut gained: Vec<(usize, u32, bool)> = Vec::new();
        let found = self.assign(state, &receivers, 0, &mut sending, &mut gained, t);
        if !found {
            let e = self.memo.entry(key).or_insert(0);
            *e = (*e).max(remaining as u32);
        }
        found
    }

    /// Enumerates receiver assignments depth-first; at the leaf, applies
    /// the round and recurses into the next one.
    fn assign(
        &mut self,
        state: &LineState,
        receivers: &[usize],
        idx: usize,
        sending: &mut Vec<Option<u32>>,
        gained: &mut Vec<(usize, u32, bool)>,
        t: usize,
    ) -> bool {
        let n = self.n;
        if idx == receivers.len() {
            if gained.is_empty() {
                return false;
            }
            let mut next = state.clone();
            for &(w, msg, rightward) in gained.iter() {
                if rightward {
                    next.right[msg as usize] = w as u8;
                } else {
                    next.left[msg as usize] = w as u8;
                }
            }
            if self.dfs(&next, t + 1) {
                // Rebuild the round, merging a sender's identical message
                // to both directions into one multicast.
                let mut round: Round = Vec::new();
                for &(w, msg, rightward) in gained.iter() {
                    let from = if rightward { w - 1 } else { w + 1 };
                    match round.iter_mut().find(|(s, m, _)| *s == from && *m == msg) {
                        Some((_, _, dests)) => dests.push(w),
                        None => round.push((from, msg, vec![w])),
                    }
                }
                self.witness.push(round);
                return true;
            }
            return false;
        }

        let w = receivers[idx];
        // Candidate deliveries into w, most urgent (least slack) first.
        let mut candidates: Vec<(usize, u32, bool)> = Vec::new();
        for (msg, (&l, &r)) in state.left.iter().zip(&state.right).enumerate() {
            if (r as usize) + 1 == w {
                let slack = (self.target - t - 1).saturating_sub(n - 1 - w);
                candidates.push((slack, msg as u32, true));
            }
            if w + 1 == l as usize {
                let slack = (self.target - t - 1).saturating_sub(w);
                candidates.push((slack, msg as u32, false));
            }
        }
        candidates.sort_unstable();

        // Skip-branch dominance: (1) a zero-slack front waiting on w makes
        // skipping fatal; (2) if some candidate's sender serves no other
        // potential receiver this round, taking that delivery costs nothing,
        // so the bare skip is dominated.
        let mut must_receive = candidates.iter().any(|&(slack, _, _)| slack == 0);
        if !must_receive {
            'cand: for &(_, msg, rightward) in &candidates {
                let from = if rightward { w - 1 } else { w + 1 };
                if let Some(m) = sending[from] {
                    if m != msg {
                        continue;
                    }
                }
                // Could `from` deliver to any other vertex this round?
                // Its only other neighbour is on the opposite side of w.
                let other = if rightward {
                    from.checked_sub(1)
                } else {
                    (from + 1 < n).then_some(from + 1)
                };
                match other {
                    None => {
                        must_receive = true;
                        break 'cand;
                    }
                    Some(o) => {
                        let contested = state.left.iter().zip(&state.right).any(|(&l, &r)| {
                            (l as usize == from && o + 1 == from && o == from - 1)
                                || (r as usize == from && o == from + 1)
                                || (l as usize == o + 1 && o + 1 == from)
                        });
                        // Conservative: treat as contested unless clearly not.
                        let clearly_free = !contested
                            && !state.left.iter().any(|&l| l as usize == from && from > 0)
                            && !state
                                .right
                                .iter()
                                .any(|&r| r as usize == from && from + 1 < n);
                        if clearly_free {
                            must_receive = true;
                            break 'cand;
                        }
                    }
                }
            }
        }

        for &(_, msg, rightward) in &candidates {
            let from = if rightward { w - 1 } else { w + 1 };
            match sending[from] {
                Some(m) if m != msg => continue,
                _ => {}
            }
            let prev = sending[from];
            sending[from] = Some(msg);
            gained.push((w, msg, rightward));
            if self.assign(state, receivers, idx + 1, sending, gained, t) {
                return true;
            }
            gained.pop();
            sending[from] = prev;
        }

        if !must_receive && self.assign(state, receivers, idx + 1, sending, gained, t) {
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::Graph;
    use gossip_model::{identity_origins, simulate_gossip};

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn hits_n_plus_r_minus_1_small() {
        for n in 3..=MAX_LINE_N {
            let s = line_gossip_schedule(n);
            assert_eq!(s.makespan(), n + n / 2 - 1, "n = {n}");
            let o = simulate_gossip(&path_graph(n), &s, &identity_origins(n)).unwrap();
            assert!(o.complete, "n = {n}");
            assert_eq!(o.completion_time, Some(n + n / 2 - 1), "n = {n}");
        }
    }

    #[test]
    fn matches_exact_optimum_on_tiny_lines() {
        // P3 optimal 3, P5 optimal 6 (established by the hold-set solver).
        assert_eq!(line_gossip_schedule(3).makespan(), 3);
        assert_eq!(line_gossip_schedule(5).makespan(), 6);
    }

    #[test]
    fn beats_generic_algorithm_by_one_on_odd_lines() {
        use crate::pipeline::GossipPlanner;
        for m in [1usize, 2] {
            let n = 2 * m + 1;
            let g = path_graph(n);
            let generic = GossipPlanner::new(&g).unwrap().plan().unwrap().makespan();
            assert_eq!(line_gossip_schedule(n).makespan() + 1, generic);
        }
    }

    #[test]
    fn matches_lower_bound_on_odd_lines() {
        use crate::bounds::gossip_lower_bound;
        for m in 1..3 {
            let n = 2 * m + 1;
            assert_eq!(
                line_gossip_schedule(n).makespan(),
                gossip_lower_bound(&path_graph(n)),
                "m = {m}"
            );
        }
    }

    #[test]
    fn pair() {
        let s = line_gossip_schedule(2);
        assert_eq!(s.makespan(), 1); // simultaneous swap: the true optimum
        let o = simulate_gossip(&path_graph(2), &s, &identity_origins(2)).unwrap();
        assert!(o.complete);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_singleton() {
        line_gossip_schedule(1);
    }

    #[test]
    #[should_panic(expected = "supports n <=")]
    fn rejects_oversize() {
        line_gossip_schedule(MAX_LINE_N + 1);
    }
}
