//! Telephone-model tree gossip baseline.
//!
//! The paper's motivation (§1–2) is that multicasting beats the telephone
//! (unicast) model; this baseline quantifies the gap on the same tree. The
//! up phase is unchanged (it is already unicast); the down phase must serve
//! each child *individually*, so a vertex with `d` children spends up to
//! `d` rounds per message where the multicast algorithms spend one. On
//! stars the ratio approaches `n / 2`.

use gossip_graph::RootedTree;
use gossip_model::Schedule;

/// Builds a telephone-legal gossip schedule for `tree` (every transmission
/// has exactly one destination). Origin table: [`crate::tree_origins`].
///
/// This is a greedy baseline, not an optimal telephone scheduler; its role
/// is the model comparison of experiment E14.
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::{telephone_tree_gossip, tree_origins};
/// use gossip_model::{validate_gossip_schedule, CommModel};
///
/// let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0]).unwrap();
/// let s = telephone_tree_gossip(&tree);
/// let g = tree.to_graph();
/// let o = validate_gossip_schedule(&g, &s, &tree_origins(&tree), CommModel::Telephone).unwrap();
/// assert!(o.complete);
/// ```
pub fn telephone_tree_gossip(tree: &RootedTree) -> Schedule {
    crate::flood::eager_flood_gossip(tree, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{concurrent_updown, tree_origins};
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::{validate_gossip_schedule, CommModel};

    fn star(n: usize) -> RootedTree {
        let mut p = vec![0u32; n];
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn telephone_legal_and_complete_on_star() {
        let t = star(10);
        let s = telephone_tree_gossip(&t);
        let g = t.to_graph();
        let o = validate_gossip_schedule(&g, &s, &tree_origins(&t), CommModel::Telephone).unwrap();
        assert!(o.complete);
        assert_eq!(o.stats.max_fanout, 1);
    }

    #[test]
    fn multicast_gap_grows_on_stars() {
        // The center must repeat every message per leaf: Θ(n²) vs Θ(n).
        let t = star(12);
        let telephone = telephone_tree_gossip(&t).makespan();
        let multicast = concurrent_updown(&t).makespan();
        assert_eq!(multicast, 13);
        // (n-1) leaves each need (n-1) messages, all via the center, which
        // sends one unicast per round: at least (n-1)(n-2) rounds of center
        // sends beyond the leaves' own.
        assert!(telephone >= (11 * 11) / 2, "telephone only {telephone}");
        assert!(telephone > 3 * multicast);
    }

    #[test]
    fn path_gap_is_small() {
        // On a path multicasting barely helps (max fanout 2).
        let t = RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap();
        let telephone = telephone_tree_gossip(&t).makespan();
        let multicast = concurrent_updown(&t).makespan();
        assert!(telephone <= 3 * multicast);
    }
}
