//! Exact optimal gossip times for tiny networks, by IDA* over hold-set
//! states.
//!
//! The paper frames its `n + r` schedule against the optimum (`>= n - 1`
//! always, `>= n + r - 1` on odd lines); this module computes the optimum
//! outright on small instances, giving the experiments a ground truth to
//! measure the algorithm's gap against.
//!
//! A state is the vector of hold sets. One search step applies a complete
//! communication round: every processor may receive one message from an
//! adjacent sender, senders multicast a single message each (or serve a
//! single receiver under the telephone model). Receiving more never hurts
//! (hold sets are monotone and extra knowledge can be ignored), so the
//! admissible heuristics below plus a transposition table keep the
//! exponential blowup usable through `n ≈ 6`.

use gossip_graph::{all_pairs_distances, Graph};
use gossip_model::CommModel;
use std::collections::HashMap;

/// Outcome of an exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactResult {
    /// The optimal gossip time.
    Optimal(usize),
    /// No schedule completes within the round limit given.
    ExceedsLimit,
    /// The node budget ran out before the bound was proven (instance too
    /// large for exact search).
    BudgetExhausted,
}

/// Hard cap on processor count: states pack into a `u64` (n² bits).
const MAX_N: usize = 8;

struct Searcher {
    n: usize,
    /// Sorted adjacency (vertex ids) per processor.
    adj: Vec<Vec<usize>>,
    dist: Vec<Vec<u32>>,
    telephone: bool,
    full: u8,
    budget: u64,
    exhausted: bool,
    /// `memo[state]` = largest remaining-round budget already proven
    /// insufficient from `state`.
    memo: HashMap<u64, u32>,
    /// Rounds of the successful schedule, pushed on the unwind of a
    /// successful DFS (deepest round first).
    witness: Vec<Vec<(usize, u8, Vec<usize>)>>,
}

#[inline]
fn pack(hold: &[u8], n: usize) -> u64 {
    let mut key = 0u64;
    for (p, &h) in hold.iter().enumerate() {
        key |= (h as u64) << (p * n);
    }
    key
}

impl Searcher {
    fn heuristic(&self, hold: &[u8]) -> usize {
        let mut h_max = 0usize;
        let mut total_missing = 0usize;
        for (p, &hp) in hold.iter().enumerate() {
            let missing = (self.full & !hp).count_ones() as usize;
            total_missing += missing;
            h_max = h_max.max(missing);
            // Distance bound: a missing message must travel from its
            // nearest current holder.
            let mut miss = self.full & !hp;
            while miss != 0 {
                let m = miss.trailing_zeros() as usize;
                miss &= miss - 1;
                let mut nearest = u32::MAX;
                for (q, &hq) in hold.iter().enumerate() {
                    if hq >> m & 1 == 1 {
                        nearest = nearest.min(self.dist[q][p]);
                    }
                }
                h_max = h_max.max(nearest as usize);
            }
        }
        h_max.max(total_missing.div_ceil(self.n))
    }

    /// Depth-limited search: can gossip finish in `remaining` more rounds?
    fn dfs(&mut self, hold: &[u8], remaining: usize) -> bool {
        if hold.iter().all(|&h| h == self.full) {
            return true;
        }
        if remaining == 0 {
            return false;
        }
        let h = self.heuristic(hold);
        if h > remaining {
            return false;
        }
        let key = pack(hold, self.n);
        if let Some(&failed) = self.memo.get(&key) {
            if remaining as u32 <= failed {
                return false;
            }
        }
        if self.budget == 0 {
            self.exhausted = true;
            return false;
        }
        self.budget -= 1;

        // Receivers that still need something, most-starved first (their
        // skip branches are pruned hardest).
        let mut receivers: Vec<usize> = (0..self.n).filter(|&p| hold[p] != self.full).collect();
        receivers.sort_by_key(|&p| std::cmp::Reverse((self.full & !hold[p]).count_ones()));

        let mut sending: Vec<Option<u8>> = vec![None; self.n]; // committed message per sender
        let mut telephone_used = vec![false; self.n];
        let mut gains: Vec<u8> = hold.to_vec();
        let found = self.assign(
            hold,
            &receivers,
            0,
            &mut sending,
            &mut telephone_used,
            &mut gains,
            remaining,
            false,
        );
        if !found && !self.exhausted {
            let e = self.memo.entry(key).or_insert(0);
            *e = (*e).max(remaining as u32);
        }
        found
    }

    /// Enumerates round assignments receiver-by-receiver, recursing into the
    /// next round at the leaves.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        hold: &[u8],
        receivers: &[usize],
        idx: usize,
        sending: &mut Vec<Option<u8>>,
        telephone_used: &mut Vec<bool>,
        gains: &mut Vec<u8>,
        remaining: usize,
        any_delivery: bool,
    ) -> bool {
        if self.exhausted {
            return false;
        }
        if idx == receivers.len() {
            if !any_delivery {
                return false; // an empty round can never help
            }
            let next: Vec<u8> = gains.clone();
            if self.dfs(&next, remaining - 1) {
                // Record this round: (sender, msg, dests) triples.
                let mut round: Vec<(usize, u8, Vec<usize>)> = Vec::new();
                for r in receivers {
                    let gained = gains[*r] & !hold[*r];
                    if gained == 0 {
                        continue;
                    }
                    let m = gained.trailing_zeros() as u8;
                    // Find the sender committed to m that is adjacent to r.
                    let s = self.adj[*r]
                        .iter()
                        .copied()
                        .find(|&s| sending[s] == Some(m))
                        .expect("sender exists");
                    match round.iter_mut().find(|(rs, rm, _)| *rs == s && *rm == m) {
                        Some((_, _, dests)) => dests.push(*r),
                        None => round.push((s, m, vec![*r])),
                    }
                }
                self.witness.push(round);
                return true;
            }
            return false;
        }
        let r = receivers[idx];
        let missing_r = (self.full & !hold[r]).count_ones() as usize;

        // Try every (sender, message) option for r.
        let adj_r = self.adj[r].clone();
        for &s in &adj_r {
            if self.telephone && telephone_used[s] {
                continue;
            }
            let candidates: u8 = match sending[s] {
                Some(m) => {
                    if self.telephone {
                        0
                    } else {
                        // Sender already multicasting m; r can join only
                        // for that same message.
                        let bit = 1u8 << m;
                        bit & hold[s] & !hold[r]
                    }
                }
                None => hold[s] & !hold[r],
            };
            let mut cand = candidates;
            while cand != 0 {
                let m = cand.trailing_zeros() as u8;
                cand &= cand - 1;
                let prev = sending[s];
                sending[s] = Some(m);
                telephone_used[s] = true;
                let prev_gain = gains[r];
                gains[r] |= 1 << m;
                if self.assign(
                    hold,
                    receivers,
                    idx + 1,
                    sending,
                    telephone_used,
                    gains,
                    remaining,
                    true,
                ) {
                    return true;
                }
                gains[r] = prev_gain;
                sending[s] = prev;
                telephone_used[s] = prev.is_some();
            }
        }

        // Skip branch: legal only if r can still finish in the rounds after
        // this one.
        if missing_r < remaining
            && self.assign(
                hold,
                receivers,
                idx + 1,
                sending,
                telephone_used,
                gains,
                remaining,
                any_delivery,
            )
        {
            return true;
        }
        false
    }
}

/// Computes the exact optimal gossip time of `g` under `model`, searching
/// schedules up to `limit` rounds with a node budget of `budget` search
/// states (try `10_000_000` for n ≤ 6).
///
/// # Panics
///
/// Panics if `g.n() > 8` (states no longer pack into a `u64`) or if `g` is
/// disconnected/empty.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_model::CommModel;
/// use gossip_core::{optimal_gossip_time, ExactResult};
///
/// // The paper's 3-processor line: optimal is 3 (= n + r - 1), not n - 1.
/// let p3 = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(
///     optimal_gossip_time(&p3, CommModel::Multicast, 6, 1_000_000),
///     ExactResult::Optimal(3)
/// );
/// ```
pub fn optimal_gossip_time(g: &Graph, model: CommModel, limit: usize, budget: u64) -> ExactResult {
    optimal_gossip_schedule(g, model, limit, budget).0
}

/// Like [`optimal_gossip_time`], but also returns a *witness schedule* of
/// optimal length (when the search succeeds), suitable for simulation and
/// inspection. The witness uses identity origins (message `p` starts at
/// processor `p`).
///
/// # Panics
///
/// Same conditions as [`optimal_gossip_time`].
pub fn optimal_gossip_schedule(
    g: &Graph,
    model: CommModel,
    limit: usize,
    budget: u64,
) -> (ExactResult, Option<gossip_model::Schedule>) {
    let n = g.n();
    assert!(n >= 1, "empty graph");
    assert!(
        n <= MAX_N,
        "exact search packs states into u64: n <= {MAX_N}"
    );
    if n == 1 {
        return (
            ExactResult::Optimal(0),
            Some(gossip_model::Schedule::new(1)),
        );
    }
    let dist = all_pairs_distances(g).expect("nonempty");
    assert!(
        dist.iter().all(|row| row.iter().all(|&d| d != u32::MAX)),
        "disconnected graph"
    );
    let telephone = matches!(model, CommModel::Telephone);

    let mut searcher = Searcher {
        n,
        adj: (0..n).map(|v| g.neighbors(v).collect()).collect(),
        dist,
        telephone,
        full: if n == 8 { 0xFF } else { (1u8 << n) - 1 },
        budget,
        exhausted: false,
        memo: HashMap::new(),
        witness: Vec::new(),
    };

    let init: Vec<u8> = (0..n).map(|p| 1u8 << p).collect();
    let start = searcher.heuristic(&init).max(n - 1);
    for bound in start..=limit {
        searcher.exhausted = false;
        if searcher.dfs(&init, bound) {
            // Witness rounds were pushed deepest-first on the unwind.
            let mut schedule = gossip_model::Schedule::new(n);
            searcher.witness.reverse();
            for (t, round) in searcher.witness.iter().enumerate() {
                for (sender, msg, dests) in round {
                    schedule.add_transmission(
                        t,
                        gossip_model::Transmission::new(*msg as u32, *sender, dests.clone()),
                    );
                }
            }
            schedule.trim();
            return (ExactResult::Optimal(bound), Some(schedule));
        }
        if searcher.exhausted {
            return (ExactResult::BudgetExhausted, None);
        }
    }
    (ExactResult::ExceedsLimit, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = 5_000_000;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn complete(n: usize) -> Graph {
        let mut e = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                e.push((u, v));
            }
        }
        Graph::from_edges(n, &e).unwrap()
    }

    fn star(n: usize) -> Graph {
        Graph::from_edges(n, &(1..n).map(|v| (0, v)).collect::<Vec<_>>()).unwrap()
    }

    fn solve(g: &Graph) -> usize {
        match optimal_gossip_time(g, CommModel::Multicast, 2 * g.n() + 4, BUDGET) {
            ExactResult::Optimal(t) => t,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn paper_line_argument_p3() {
        // §1: a 3-line cannot finish in 2 rounds; optimal is n + r - 1 = 3.
        assert_eq!(solve(&path(3)), 3);
    }

    #[test]
    fn odd_line_p5() {
        // n = 5, r = 2: the paper's bound n + r - 1 = 6 is tight.
        assert_eq!(solve(&path(5)), 6);
    }

    #[test]
    fn rings_hit_n_minus_1() {
        assert_eq!(solve(&cycle(4)), 3);
        assert_eq!(solve(&cycle(5)), 4);
    }

    #[test]
    fn cliques_hit_n_minus_1() {
        assert_eq!(solve(&complete(4)), 3);
    }

    #[test]
    fn stars_hit_n_plus_r_minus_1() {
        assert_eq!(solve(&star(4)), 4);
        assert_eq!(solve(&star(5)), 5);
    }

    #[test]
    fn pair_and_singleton() {
        assert_eq!(solve(&path(2)), 1);
        let g1 = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(
            optimal_gossip_time(&g1, CommModel::Multicast, 4, 1000),
            ExactResult::Optimal(0)
        );
    }

    #[test]
    fn telephone_never_faster_than_multicast() {
        for g in [path(4), star(4), cycle(4)] {
            let mc = match optimal_gossip_time(&g, CommModel::Multicast, 12, BUDGET) {
                ExactResult::Optimal(t) => t,
                o => panic!("{o:?}"),
            };
            let tp = match optimal_gossip_time(&g, CommModel::Telephone, 12, BUDGET) {
                ExactResult::Optimal(t) => t,
                o => panic!("{o:?}"),
            };
            assert!(tp >= mc, "telephone {tp} < multicast {mc}");
        }
    }

    #[test]
    fn limit_respected() {
        assert_eq!(
            optimal_gossip_time(&path(3), CommModel::Multicast, 2, 1000),
            ExactResult::ExceedsLimit
        );
    }
}
