//! Weighted gossiping (the paper's §4 extension): each processor starts
//! with `w_p >= 1` messages.
//!
//! "The idea is to replace a processor that needs to send l messages with a
//! chain with l processors. In practice, one only mimics this splitting
//! process." This module performs the splitting literally: each original
//! vertex becomes a vertical chain of `w_p` virtual processors grafted into
//! the tree (parent edge at the chain head, children hanging off the chain
//! tail), ConcurrentUpDown runs on the expanded tree, and the result is a
//! schedule of length `W + r'` where `W = Σ w_p` is the total message count
//! and `r'` the expanded tree's height (`r' <= Σ_path max w` along the
//! deepest path).

use crate::concurrent::concurrent_updown;
use gossip_graph::{GraphError, RootedTree, NO_PARENT};
use gossip_model::Schedule;

/// The result of planning a weighted gossip.
#[derive(Debug, Clone)]
pub struct WeightedPlan {
    /// The expanded ("split") tree of `W` virtual processors.
    pub expanded_tree: RootedTree,
    /// The ConcurrentUpDown schedule over the expanded tree.
    pub schedule: Schedule,
    /// `owner[v'] = p`: the original vertex each virtual processor belongs
    /// to.
    pub owner: Vec<usize>,
    /// `virtuals[p]`: the chain of virtual processors of original vertex
    /// `p`, head (parent side) first.
    pub virtuals: Vec<Vec<usize>>,
    /// Total number of messages `W`.
    pub total_weight: usize,
}

impl WeightedPlan {
    /// The origin table for simulating the expanded schedule.
    pub fn origins(&self) -> Vec<usize> {
        crate::concurrent::tree_origins(&self.expanded_tree)
    }

    /// Which original vertex each *message* (by expanded label) belongs to.
    pub fn message_owner(&self, msg: u32) -> usize {
        self.owner[self.expanded_tree.vertex_of_label(msg)]
    }
}

/// Splits each vertex of `tree` into a chain of `weights[v]` virtual
/// processors and schedules gossip over the expansion.
///
/// # Errors
///
/// Returns an error if `weights.len() != tree.n()` or any weight is zero.
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::weighted_gossip;
/// use gossip_model::simulate_gossip;
///
/// let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0]).unwrap();
/// let plan = weighted_gossip(&tree, &[2, 1, 3]).unwrap();
/// assert_eq!(plan.total_weight, 6);
/// let g = plan.expanded_tree.to_graph();
/// let o = simulate_gossip(&g, &plan.schedule, &plan.origins()).unwrap();
/// assert!(o.complete);
/// ```
pub fn weighted_gossip(tree: &RootedTree, weights: &[usize]) -> Result<WeightedPlan, GraphError> {
    let n = tree.n();
    if weights.len() != n {
        return Err(GraphError::NotATree {
            reason: format!("{} weights for {n} vertices", weights.len()),
        });
    }
    if let Some(p) = weights.iter().position(|&w| w == 0) {
        return Err(GraphError::NotATree {
            reason: format!("vertex {p} has weight 0 (every processor holds >= 1 message)"),
        });
    }

    let total_weight: usize = weights.iter().sum();
    // Allocate virtual ids: vertex p's chain occupies consecutive ids.
    let mut virtuals: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut owner = Vec::with_capacity(total_weight);
    let mut next = 0usize;
    for (p, &w) in weights.iter().enumerate() {
        let chain: Vec<usize> = (next..next + w).collect();
        next += w;
        owner.extend(std::iter::repeat_n(p, w));
        virtuals.push(chain);
    }

    // Build the expanded parent array: chain head's parent is the tail of
    // the original parent's chain; within a chain each link hangs off the
    // previous one.
    let mut parent = vec![NO_PARENT; total_weight];
    for p in 0..n {
        let chain = &virtuals[p];
        for pair in chain.windows(2) {
            parent[pair[1]] = pair[0] as u32;
        }
        match tree.parent(p) {
            Some(q) => parent[chain[0]] = *virtuals[q].last().expect("nonempty chain") as u32,
            None => parent[chain[0]] = NO_PARENT,
        }
    }
    let root = virtuals[tree.root()][0];
    let expanded_tree = RootedTree::from_parents(root, &parent)?;
    let schedule = concurrent_updown(&expanded_tree);

    Ok(WeightedPlan {
        expanded_tree,
        schedule,
        owner,
        virtuals,
        total_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::simulate_gossip;

    fn check(tree: &RootedTree, weights: &[usize]) -> WeightedPlan {
        let plan = weighted_gossip(tree, weights).unwrap();
        let g = plan.expanded_tree.to_graph();
        let o = simulate_gossip(&g, &plan.schedule, &plan.origins()).unwrap();
        assert!(o.complete);
        assert_eq!(
            plan.schedule.makespan(),
            plan.total_weight + plan.expanded_tree.height() as usize
        );
        plan
    }

    #[test]
    fn unit_weights_reduce_to_plain_gossip() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1]).unwrap();
        let plan = check(&tree, &[1, 1, 1, 1]);
        assert_eq!(plan.total_weight, 4);
        assert_eq!(plan.expanded_tree.height(), tree.height());
    }

    #[test]
    fn heavy_root() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0]).unwrap();
        let plan = check(&tree, &[4, 1, 1]);
        assert_eq!(plan.total_weight, 6);
        // Root chain adds 3 levels below the root before the children.
        assert_eq!(plan.expanded_tree.height(), 4);
        assert_eq!(plan.virtuals[0], vec![0, 1, 2, 3]);
        assert_eq!(plan.owner[2], 0);
        assert_eq!(plan.owner[4], 1);
    }

    #[test]
    fn heavy_leaf() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        let plan = check(&tree, &[1, 3]);
        assert_eq!(plan.total_weight, 4);
        assert_eq!(plan.expanded_tree.height(), 3);
    }

    #[test]
    fn message_owner_mapping() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        let plan = weighted_gossip(&tree, &[2, 2]).unwrap();
        let owners: Vec<usize> = (0..4).map(|m| plan.message_owner(m)).collect();
        // Labels follow DFS order down the combined chain 0-1-2-3.
        assert_eq!(owners, vec![0, 0, 1, 1]);
    }

    #[test]
    fn rejects_bad_weights() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        assert!(weighted_gossip(&tree, &[1]).is_err());
        assert!(weighted_gossip(&tree, &[1, 0]).is_err());
    }

    #[test]
    fn mixed_weights_on_a_star() {
        let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0]).unwrap();
        let plan = check(&tree, &[1, 2, 3, 1]);
        assert_eq!(plan.total_weight, 7);
        // Deepest chain: child with weight 3 -> height 3.
        assert_eq!(plan.expanded_tree.height(), 3);
    }
}
