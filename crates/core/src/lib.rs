//! # gossip-core
//!
//! The scheduling algorithms of Gonzalez's *"Gossiping in the Multicasting
//! Communication Environment"* (IPPS 2001; journal version in IEEE TPDS),
//! plus every baseline the paper positions itself against:
//!
//! | Algorithm | Module | Guarantee |
//! |-----------|--------|-----------|
//! | **ConcurrentUpDown** (Propagate-Up ∥ Propagate-Down) | [`concurrent`] | `n + r` (Theorem 1) |
//! | Simple | [`simple`] | `2n + r - 3` (Lemma 1) |
//! | UpDown (reconstruction of \[15\]) | [`updown`] | between the two |
//! | Telephone-model baseline | [`telephone`] | unicast-only comparison |
//! | Hamiltonian-circuit gossip | [`ring`] | `n - 1` (optimal) when a circuit exists |
//! | Offline broadcast | [`broadcast`] | eccentricity of the source |
//!
//! Supporting machinery: DFS-label views ([`labeling`]), the o/b/s/l/r
//! message taxonomy ([`mod@classify`]), lower bounds including the cut-vertex
//! generalization of the paper's line argument ([`bounds`]), exact optimal
//! search on tiny networks ([`exact`]), randomized schedule search and the
//! optimal Petersen schedule ([`search`]), weighted gossiping by chain
//! splitting ([`weighted`]), the online/distributed protocol with a
//! thread-per-processor harness ([`online`]), the graph-to-schedule
//! pipeline ([`pipeline`]), self-healing execution under seeded fault
//! plans — residual planning plus epoch-based repair ([`recovery`]) — and
//! churn-resilient execution under mid-run topology changes with
//! incremental schedule repair ([`churn`]).
//!
//! ## Quick start
//!
//! ```
//! use gossip_graph::Graph;
//! use gossip_core::GossipPlanner;
//! use gossip_model::simulate_gossip;
//!
//! // Any connected network; here a 3x3 grid.
//! let mut edges = Vec::new();
//! for r in 0..3 {
//!     for c in 0..3 {
//!         let v = r * 3 + c;
//!         if c < 2 { edges.push((v, v + 1)); }
//!         if r < 2 { edges.push((v, v + 3)); }
//!     }
//! }
//! let g = Graph::from_edges(9, &edges).unwrap();
//!
//! let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
//! assert_eq!(plan.makespan(), 9 + 2); // n + r, radius 2
//! assert!(simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap().complete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod bounds;
pub mod broadcast;
pub mod broadcast_model;
pub mod churn;
pub mod classify;
pub mod concurrent;
pub mod exact;
pub mod fast_planner;
pub(crate) mod flood;
pub mod gather;
pub mod labeling;
pub mod line;
pub mod maintenance;
pub mod multi_broadcast;
pub mod online;
pub mod paper_map;
pub mod pipeline;
pub mod pipelined;
pub mod recovery;
pub mod ring;
pub mod search;
pub mod simple;
pub mod telephone;
pub mod telephone_broadcast;
pub mod updown;
pub mod weighted;

pub use annotated::{
    annotated_concurrent_updown, annotated_to_schedule, rule_tag_index, AnnotatedTransmission, Rule,
};
pub use bounds::{cut_vertex_lower_bound, gossip_lower_bound, trivial_lower_bound};
pub use broadcast::broadcast_schedule;
pub use broadcast_model::broadcast_model_gossip;
pub use churn::{ChurnEpoch, ChurnError, ChurnExecutor, ChurnReport, RepairDecision};
pub use classify::{classify, is_lip, is_rip, MessageClass};
pub use concurrent::{concurrent_updown, concurrent_updown_recorded, tree_origins};
pub use exact::{optimal_gossip_schedule, optimal_gossip_time, ExactResult};
pub use fast_planner::{
    concurrent_updown_flat, concurrent_updown_flat_on, concurrent_updown_flat_recorded,
    FastGossipPlan, FlatLabels,
};
pub use gather::gather_schedule;
pub use labeling::{LabelView, VertexParams};
pub use line::{line_gossip_schedule, MAX_LINE_N};
pub use maintenance::{EdgeOp, MaintenanceOutcome, TreeMaintainer};
pub use multi_broadcast::multi_broadcast_schedule;
pub use online::{
    run_online, run_online_threaded, run_online_threaded_recorded, run_online_threaded_traced,
    OnlineSend, OnlineVertex,
};
pub use pipeline::{Algorithm, GossipPlan, GossipPlanner};
pub use pipelined::{
    min_pipeline_period, pipelined_gossip, pipelined_gossip_recorded, PipelinedPlan,
};
pub use recovery::{
    plan_completion, EpochReport, RecoveryReport, ResidualPlan, ResilientExecutor,
    DEFAULT_MAX_EPOCHS,
};
pub use ring::{circuit_gossip_schedule, ring_gossip_schedule};
pub use search::{petersen_gossip_schedule, randomized_gossip_search, SearchOutcome};
pub use simple::{simple_gossip, simple_gossip_recorded};
pub use telephone::telephone_tree_gossip;
pub use telephone_broadcast::{telephone_broadcast_schedule, telephone_broadcast_times};
pub use updown::{updown_gossip, updown_gossip_recorded};
pub use weighted::{weighted_gossip, WeightedPlan};
