//! # Paper-to-code map
//!
//! A section-by-section index from Gonzalez's paper to this workspace, for
//! readers following along with the text. (Documentation-only module.)
//!
//! ## §1 — Introduction: the model and the problem
//!
//! | Paper concept | Code |
//! |---|---|
//! | communication network `N` | [`gossip_graph::Graph`] |
//! | hold sets `h_i` | [`gossip_model::BitSet`] inside [`gossip_model::Simulator`] |
//! | communication round `C` of tuples `(m, l, D)` | [`gossip_model::CommRound`], [`gossip_model::Transmission`] |
//! | rule "every pair of D sets disjoint" | `ModelError::DuplicateReceiver` in [`gossip_model::Simulator::step`] |
//! | rule "all indices l distinct" | `ModelError::DuplicateSender` |
//! | receive-before-send within a time unit | hold updates applied after round validation; see [`gossip_model::Simulator::step`] |
//! | communication schedule / total communication time | [`gossip_model::Schedule`], [`gossip_model::Schedule::makespan`] |
//! | trivial lower bound `n - 1` | [`crate::trivial_lower_bound`] |
//! | Fig 1 ring schedule (`n - 1`, optimal) | [`crate::circuit_gossip_schedule`] |
//! | Fig 2 Petersen claim (telephone `n - 1`) | [`crate::petersen_gossip_schedule`] |
//! | Fig 3 N3 claim (multicast beats telephone) | `K_{2,3}` + [`crate::optimal_gossip_time`] (experiment E7) |
//! | 3-processor line argument; `n + r - 1` line bound | [`crate::cut_vertex_lower_bound`] (generalized) |
//!
//! ## §2 — Previous work and applications
//!
//! | Paper concept | Code |
//! |---|---|
//! | telephone model | [`gossip_model::CommModel::Telephone`]; baseline [`crate::telephone_tree_gossip`] |
//! | broadcasting model | [`gossip_model::CommModel::Broadcast`]; greedy [`crate::broadcast_model_gossip`] |
//! | trivial offline broadcast (eccentricity rounds) | [`crate::broadcast_schedule`] |
//! | wireless `r^α` power motivation | `gossip_workloads::unit_disk`, `gossip_workloads::schedule_energy` (experiment E20) |
//!
//! ## §3.1 — Constructing the tree network
//!
//! | Paper concept | Code |
//! |---|---|
//! | n BFS traversals, keep least height, `O(mn)` | [`gossip_graph::min_depth_spanning_tree`] (+ rayon-parallel variant) |
//! | Fig 4 network / Fig 5 tree | `gossip_workloads::fig4_graph`, `gossip_workloads::fig5_tree` |
//!
//! ## §3.2 — Gossiping in tree networks
//!
//! | Paper concept | Code |
//! |---|---|
//! | levels `k`, DFS labels, subtree ranges `[i, j]` | [`gossip_graph::RootedTree`], [`crate::LabelView`] |
//! | o/b/s/l/r-message taxonomy; lip/rip | [`crate::classify()`](crate::classify()), [`crate::is_lip`], [`crate::is_rip`] |
//! | algorithm Simple, Lemma 1 (`2n + r - 3`) | [`crate::simple_gossip`] |
//! | algorithm UpDown \[15\] | [`crate::updown_gossip`] (reconstruction; see DESIGN.md §3) |
//! | algorithm Propagate-Up (U1–U4), Lemma 2 | [`crate::gather_schedule`] (standalone); steps inside [`crate::concurrent_updown`] |
//! | algorithm Propagate-Down (D1–D3), Lemma 3 | inside [`crate::concurrent_updown`]; per-rule tags in [`crate::annotated_concurrent_updown`] |
//! | ConcurrentUpDown, Theorem 1 (`n + r`) | [`crate::concurrent_updown`]; property tests in `tests/theorem1_properties.rs` |
//! | Tables 1–4 | [`gossip_model::vertex_trace`] rendering; exact assertions in `tests/paper_tables.rs` |
//! | the "message 5 sent late causes conflicts" discussion | the deferral slots `j - k + 1`, `j - k + 2` ([`crate::annotated::Rule::D2Deferred`]) |
//!
//! ## §4 — Discussion
//!
//! | Paper concept | Code |
//! |---|---|
//! | near-optimality (`r ≤ n/2` ⇒ ~1.5-approx) | experiment E9 (`exp_theorem1`) |
//! | `O(mn)` tree step dominates; rest `O(n)` | criterion benches (`benches/construction.rs`) |
//! | repeated gossiping amortizes the tree | [`crate::TreeMaintainer`], [`crate::pipelined_gossip`] (experiments E21) |
//! | line networks: improve by one unit, non-uniform | [`crate::line_gossip_schedule`] (`n + r - 1`, exact search) |
//! | online adaptation (only `i`, `j`, `k` needed) | [`crate::OnlineVertex`], [`crate::run_online`], [`crate::run_online_threaded`] |
//! | weighted gossiping by chain splitting | [`crate::weighted_gossip`] |
//!
//! ## Beyond the paper (context the experiments add)
//!
//! - exact optimal gossip times with witness schedules:
//!   [`crate::optimal_gossip_time`], [`crate::optimal_gossip_schedule`];
//! - exhaustive tiny-graph study over all connected graphs on ≤ 5 vertices
//!   (experiment E19);
//! - schedule compaction certifying ConcurrentUpDown's density
//!   ([`gossip_model::compact_schedule`], experiment E22);
//! - optimal telephone broadcast on trees (greedy DP,
//!   [`crate::telephone_broadcast_schedule`]);
//! - pipelined multi-message broadcast
//!   ([`crate::multi_broadcast_schedule`]).
