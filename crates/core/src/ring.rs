//! Optimal gossiping along a Hamiltonian circuit (the paper's Fig 1 /
//! network `N_1` argument).
//!
//! "In the first communication round, each processor sends to its clockwise
//! neighbor the message it holds, and then, in the remaining iterations,
//! every processor transmits to its clockwise neighbor the message it just
//! received from its counter-clockwise neighbor. The total communication
//! time is n - 1, which is best possible."

use gossip_graph::{find_hamiltonian_circuit, verify_circuit, Graph};
use gossip_model::{Schedule, Transmission};

/// Builds the optimal `n - 1`-round gossip schedule along `circuit`
/// (a Hamiltonian circuit of the network, given as a vertex sequence).
///
/// Message ids equal originating vertex ids (identity origin table). Every
/// transmission is a unicast, so the schedule is telephone-legal too.
///
/// # Panics
///
/// Panics if `circuit` is not a permutation of `0..n` (adjacency is *not*
/// checked here — pair with [`verify_circuit`] or use
/// [`ring_gossip_schedule`]).
pub fn circuit_gossip_schedule(n: usize, circuit: &[usize]) -> Schedule {
    assert_eq!(circuit.len(), n, "circuit must visit every vertex once");
    let mut seen = vec![false; n];
    for &v in circuit {
        assert!(v < n && !seen[v], "circuit is not a permutation");
        seen[v] = true;
    }
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }
    for t in 0..n - 1 {
        for p in 0..n {
            // At round t, circuit position p forwards the message that
            // originated t positions counter-clockwise of it.
            let msg = circuit[(p + n - t) % n] as u32;
            let from = circuit[p];
            let to = circuit[(p + 1) % n];
            schedule.add_transmission(t, Transmission::unicast(msg, from, to));
        }
    }
    schedule
}

/// Finds a Hamiltonian circuit of `g` (exact search — exponential worst
/// case, fine at paper scale) and builds the optimal `n - 1` schedule along
/// it. Returns `None` when `g` has no Hamiltonian circuit.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::ring_gossip_schedule;
/// use gossip_model::{simulate_gossip, identity_origins};
///
/// let n = 7;
/// let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
/// let g = Graph::from_edges(n, &edges).unwrap();
/// let s = ring_gossip_schedule(&g).unwrap();
/// assert_eq!(s.makespan(), n - 1);
/// assert!(simulate_gossip(&g, &s, &identity_origins(n)).unwrap().complete);
/// ```
pub fn ring_gossip_schedule(g: &Graph) -> Option<Schedule> {
    let circuit = find_hamiltonian_circuit(g)?;
    debug_assert!(verify_circuit(g, &circuit));
    Some(circuit_gossip_schedule(g.n(), &circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::{identity_origins, simulate_gossip, validate_gossip_schedule, CommModel};

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn optimal_on_rings() {
        for n in [3, 4, 5, 8, 13] {
            let g = ring(n);
            let s = ring_gossip_schedule(&g).unwrap();
            assert_eq!(s.makespan(), n - 1);
            let o = simulate_gossip(&g, &s, &identity_origins(n)).unwrap();
            assert!(o.complete);
            assert_eq!(o.completion_time, Some(n - 1));
        }
    }

    #[test]
    fn telephone_legal() {
        let g = ring(6);
        let s = ring_gossip_schedule(&g).unwrap();
        let o =
            validate_gossip_schedule(&g, &s, &identity_origins(6), CommModel::Telephone).unwrap();
        assert!(o.complete);
    }

    #[test]
    fn none_for_trees() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(ring_gossip_schedule(&g).is_none());
    }

    #[test]
    fn works_on_richer_hamiltonian_graphs() {
        // A wheel: hub 0 + rim 1..=5.
        let mut edges = vec![(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)];
        for v in 1..=5 {
            edges.push((0, v));
        }
        let g = Graph::from_edges(6, &edges).unwrap();
        let s = ring_gossip_schedule(&g).unwrap();
        assert_eq!(s.makespan(), 5);
        assert!(
            simulate_gossip(&g, &s, &identity_origins(6))
                .unwrap()
                .complete
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_circuit() {
        circuit_gossip_schedule(4, &[0, 1, 2, 2]);
    }
}
