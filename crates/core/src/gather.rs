//! Gather (all-to-one accumulation): algorithm Propagate-Up in isolation —
//! the paper's Lemma 2 as a standalone primitive.
//!
//! Many of the applications the paper cites (§2: numerical kernels) need
//! the *accumulation* pattern — every processor's message collected at one
//! root — rather than full gossip. Running only the Propagate-Up half of
//! ConcurrentUpDown does exactly that: the root receives message `m` at
//! time exactly `m`, so the gather completes at time `n - 1`, which is
//! optimal (the root receives at most one message per round).

use crate::labeling::LabelView;
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};

/// Builds the Propagate-Up-only schedule on `tree`: every message reaches
/// the root; message `m` arrives at time exactly `m` (Lemma 2's invariant).
///
/// Makespan: `n - 1` for `n >= 2`, 0 otherwise — optimal for gather.
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::gather_schedule;
///
/// let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1]).unwrap();
/// let s = gather_schedule(&tree);
/// assert_eq!(s.makespan(), 3); // n - 1
/// ```
pub fn gather_schedule(tree: &RootedTree) -> Schedule {
    let lv = LabelView::new(tree);
    let n = lv.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }
    for label in lv.labels() {
        let p = lv.params(label);
        if p.is_root() {
            continue;
        }
        let vertex = lv.vertex(label);
        let parent = lv.vertex(p.parent_i);
        // (U3): the lip-message at time 0.
        if p.has_lip() {
            schedule.add_transmission(0, Transmission::unicast(p.i, vertex, parent));
        }
        // (U4): rip-messages at time m - k.
        for m in p.rip_start()..=p.j {
            schedule.add_transmission((m - p.k) as usize, Transmission::unicast(m, vertex, parent));
        }
    }
    schedule.trim();
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::tree_origins;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::{CommModel, CommRound, Simulator};

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    /// Lemma 2 verbatim: the root receives message m at time exactly m.
    #[test]
    fn root_receives_message_m_at_time_m() {
        for tree in [
            fig5(),
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 0]).unwrap(),
            RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap(),
        ] {
            let s = gather_schedule(&tree);
            let n = tree.n();
            assert_eq!(s.makespan(), n - 1);
            let g = tree.to_graph();
            let mut sim = Simulator::new(&g, CommModel::Multicast, &tree_origins(&tree)).unwrap();
            let root = tree.root();
            let empty = CommRound::new();
            for t in 0..s.makespan() {
                sim.step(s.rounds.get(t).unwrap_or(&empty)).unwrap();
                // After round t (time t + 1) the root holds messages 0..=t+1.
                for m in 0..=(t + 1).min(n - 1) {
                    assert!(sim.holds(root).contains(m), "root missing {m} at {}", t + 1);
                }
                for m in (t + 2)..n {
                    assert!(
                        !sim.holds(root).contains(m),
                        "root has {m} early at {}",
                        t + 1
                    );
                }
            }
        }
    }

    #[test]
    fn gather_is_a_sub_schedule_of_concurrent_updown() {
        // Every gather transmission appears (possibly widened by D3's
        // children) in the full schedule at the same time with the same
        // message.
        let tree = fig5();
        let gather = gather_schedule(&tree);
        let full = crate::concurrent::concurrent_updown(&tree);
        for (t, tx) in gather.iter() {
            let found = full.rounds[t]
                .transmissions
                .iter()
                .any(|f| f.from == tx.from && f.msg == tx.msg && f.to.contains(&tx.to[0]));
            assert!(
                found,
                "gather send {tx:?} at {t} missing from full schedule"
            );
        }
    }

    #[test]
    fn singleton() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(gather_schedule(&t).makespan(), 0);
    }
}
