//! Offline broadcasting under the multicast model (the paper's §2).
//!
//! "At time zero, the processor that has the message broadcasts it to all
//! its neighbors. Then, at each iteration, each processor that just received
//! a message will plan to multicast it to all its neighbors that do not have
//! the message. But, if there are two or more processors currently planning
//! to send a processor the message, then only one of them will actually send
//! it." Every processor at BFS distance `d` from the source receives the
//! message at time exactly `d`, so the total communication time is the
//! source's eccentricity.

use gossip_graph::{bfs, Graph};
use gossip_model::{Schedule, Transmission};

/// Builds the optimal broadcast schedule for one message originating at
/// `source` (message id 0 by convention — broadcast has a single message).
///
/// The conflict rule "only one of them will actually send it" is realized
/// by BFS parenthood: each vertex receives from its BFS-tree parent, and a
/// vertex at distance `d` multicasts at time `d` to its BFS children.
///
/// Returns the schedule and its makespan (= eccentricity of `source`).
/// Unreachable vertices simply never receive (the caller should check
/// connectivity; gossiping is undefined on disconnected graphs anyway).
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_core::broadcast_schedule;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
/// let (s, time) = broadcast_schedule(&g, 2);
/// assert_eq!(time, 2); // eccentricity of the center
/// assert_eq!(s.makespan(), 2);
/// ```
pub fn broadcast_schedule(g: &Graph, source: usize) -> (Schedule, usize) {
    let n = g.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return (schedule, 0);
    }
    let bfs_result = bfs(g, source);

    // Group BFS children under their parents; parent at distance d sends at
    // time d (it received at d, or is the source at 0).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        let p = bfs_result.parent[v];
        if p != u32::MAX {
            children[p as usize].push(v);
        }
    }
    let mut makespan = 0;
    for (v, kids) in children.iter().enumerate() {
        if kids.is_empty() {
            continue;
        }
        let t = bfs_result.dist[v] as usize;
        makespan = makespan.max(t + 1);
        schedule.add_transmission(t, Transmission::new(0, v, kids.clone()));
    }
    schedule.trim();
    (schedule, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::{CommModel, CommRound, Simulator};

    /// Runs the broadcast schedule and checks each vertex learns message 0
    /// exactly at its BFS distance.
    fn check(g: &Graph, source: usize) {
        let (s, time) = broadcast_schedule(g, source);
        let d = bfs(g, source);
        assert_eq!(time as u32, d.eccentricity().unwrap());

        // The broadcast uses a single real message (id 0): build a gossip
        // simulator where message 0 starts at `source` (the other origins
        // are irrelevant placeholders).
        let mut origins: Vec<usize> = (0..g.n()).collect();
        origins.swap(0, source);
        let mut sim = Simulator::new(g, CommModel::Multicast, &origins).unwrap();
        let empty = CommRound::new();
        for t in 0..time {
            let round = s.rounds.get(t).unwrap_or(&empty);
            sim.step(round).unwrap();
            for v in 0..g.n() {
                let should_have = d.dist[v] as usize <= t + 1;
                assert_eq!(
                    sim.holds(v).contains(0),
                    should_have,
                    "vertex {v} at time {}",
                    t + 1
                );
            }
        }
        assert!(sim.everyone_holds(0));
    }

    #[test]
    fn path_from_center_and_end() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]).unwrap();
        check(&g, 3);
        check(&g, 0);
    }

    #[test]
    fn cycle_and_clique() {
        let ring = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        check(&ring, 0);
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let clique = Graph::from_edges(5, &edges).unwrap();
        let (s, time) = broadcast_schedule(&clique, 2);
        assert_eq!(time, 1);
        assert_eq!(s.rounds[0].transmissions.len(), 1);
        assert_eq!(s.rounds[0].transmissions[0].to.len(), 4);
        check(&clique, 2);
    }

    #[test]
    fn singleton() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let (s, time) = broadcast_schedule(&g, 0);
        assert_eq!(time, 0);
        assert_eq!(s.makespan(), 0);
    }

    #[test]
    fn every_vertex_receives_exactly_once() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]).unwrap();
        let (s, _) = broadcast_schedule(&g, 0);
        let mut receive_count = [0usize; 6];
        for (_, tx) in s.iter() {
            for &d in &tx.to {
                receive_count[d] += 1;
            }
        }
        assert_eq!(receive_count[0], 0);
        for (v, &c) in receive_count.iter().enumerate().skip(1) {
            assert_eq!(c, 1, "vertex {v}");
        }
    }
}
