//! CSR-direct **ConcurrentUpDown**: the fast planner's generator.
//!
//! [`concurrent_updown`](crate::concurrent_updown) materializes a
//! `Vec`-of-`Vec` [`Schedule`](gossip_model::Schedule) (one allocation per
//! transmission plus a `BTreeMap` per vertex) and then flattens it; at
//! n = 10⁵ that intermediate representation is the dominant cost of
//! planning. This module emits the *same* schedule straight into
//! [`FlatSchedule`] CSR arenas:
//!
//! - [`FlatLabels`] packs the per-label parameters (`j`, `k`, parent, child
//!   lists) into flat arrays — the arena-backed replacement for
//!   [`LabelView`](crate::LabelView)'s `Vec<Vec<u32>>` children;
//! - the per-vertex Propagate-Up (U3/U4) and Propagate-Down (D3/D2) event
//!   sequences are each generated *in nondecreasing time order* by O(1)
//!   state machines, so a three-way merge replaces the reference's
//!   `BTreeMap` overlay;
//! - arrivals flow down a DFS stack of *streams* (the down-multicasts of
//!   each ancestor still on the stack), bounding live memory by
//!   O(n · height) instead of the reference's Θ(n²) `recv_from_parent`
//!   table;
//! - a **count pass** sizes every CSR array exactly (per-round transmission
//!   and delivery totals → prefix sums), then an **emit pass** writes each
//!   transmission into its final slot via per-round cursors. No
//!   re-allocation, no sort, no intermediate `Schedule`.
//!
//! Both passes walk vertices in ascending label order and each vertex sends
//! at most once per round, so within every round the transmissions appear
//! in ascending sender label — exactly the order
//! [`FlatSchedule::from_schedule`] produces from the reference generator.
//! On the same tree the two pipelines are **byte-identical** (same
//! [`digest`](FlatSchedule::digest)); the equivalence tests below and the
//! `planner_equivalence` suite pin that down.

use crate::concurrent::tree_origins;
use gossip_graph::{RootedTree, NO_PARENT};
use gossip_model::FlatSchedule;
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};

/// A scheduled down-multicast (or a pending event during the merge):
/// message `msg` leaves the vertex at time `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    t: u32,
    msg: u32,
}

/// Destination set of a down event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Down {
    /// Pure Propagate-Up send: no child destinations.
    No,
    /// All children: D2 forwards and the own-message D3.
    All,
    /// All children except the one (given by label) whose subtree contains
    /// the message: D3 for `m > i`.
    Except(u32),
}

/// The per-label parameter arena: everything the generator reads, packed
/// into flat arrays indexed by DFS label (children as CSR).
#[derive(Debug, Clone)]
pub struct FlatLabels {
    /// Subtree range end `j` per label (`i..=j` is the subtree).
    j: Vec<u32>,
    /// Level `k` per label (root = 0).
    k: Vec<u32>,
    /// Parent label per label; [`NO_PARENT`] for the root.
    parent: Vec<u32>,
    /// Original vertex id per label.
    vertex: Vec<u32>,
    /// CSR offsets into `child_labels`, length n + 1.
    child_offsets: Vec<u32>,
    /// Children as labels, ascending within each vertex (DFS order).
    child_labels: Vec<u32>,
    /// Tree height (max level).
    height: u32,
}

impl FlatLabels {
    /// Packs `tree` into the flat label-space arena (the fast planner's
    /// `label_flat` phase).
    pub fn new(tree: &RootedTree) -> Self {
        let _phase = gossip_telemetry::profile::phase("label_flat");
        let n = tree.n();
        let mut j = Vec::with_capacity(n);
        let mut k = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut vertex = Vec::with_capacity(n);
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut child_labels = Vec::with_capacity(n.saturating_sub(1));
        child_offsets.push(0u32);
        for label in 0..n as u32 {
            let v = tree.vertex_of_label(label);
            let (i0, j0) = tree.subtree_range(v);
            debug_assert_eq!(i0, label);
            j.push(j0);
            k.push(tree.level(v));
            parent.push(match tree.parent(v) {
                Some(p) => tree.label(p),
                None => NO_PARENT,
            });
            vertex.push(v as u32);
            for &c in tree.children(v) {
                child_labels.push(tree.label(c as usize));
            }
            child_offsets.push(child_labels.len() as u32);
        }
        debug_assert!(
            child_offsets
                .windows(2)
                .all(|w| child_labels[w[0] as usize..w[1] as usize].is_sorted()),
            "DFS child labels must ascend within each vertex"
        );
        FlatLabels {
            j,
            k,
            parent,
            vertex,
            child_offsets,
            child_labels,
            height: tree.height(),
        }
    }

    /// Number of vertices (= messages).
    #[inline]
    pub fn n(&self) -> usize {
        self.vertex.len()
    }

    /// Tree height.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Subtree range end `j` of `label`.
    #[inline]
    fn j(&self, label: u32) -> u32 {
        self.j[label as usize]
    }

    /// Level `k` of `label`.
    #[inline]
    fn k(&self, label: u32) -> u32 {
        self.k[label as usize]
    }

    /// Parent label of `label` ([`NO_PARENT`] for the root).
    #[inline]
    fn parent(&self, label: u32) -> u32 {
        self.parent[label as usize]
    }

    /// Original vertex id of `label`.
    #[inline]
    fn vertex(&self, label: u32) -> u32 {
        self.vertex[label as usize]
    }

    /// Children of `label` as labels, ascending.
    #[inline]
    fn children(&self, label: u32) -> &[u32] {
        let lo = self.child_offsets[label as usize] as usize;
        let hi = self.child_offsets[label as usize + 1] as usize;
        &self.child_labels[lo..hi]
    }

    /// The origin table for the simulator (same as
    /// [`tree_origins`](crate::tree_origins)).
    pub fn origins(&self) -> Vec<usize> {
        self.vertex.iter().map(|&v| v as usize).collect()
    }
}

/// Propagate-Up events: the lip-message (U3, time 0) then the rip-messages
/// (U4, `m - k` for `m ∈ [max(i, i'+2), j]`). Nondecreasing `t`.
struct UpSeq {
    lip_pending: bool,
    lip_msg: u32,
    next_rip: u32,
    rip_end: u32,
    k: u32,
}

impl UpSeq {
    fn next(&mut self) -> Option<Ev> {
        if self.lip_pending {
            self.lip_pending = false;
            return Some(Ev {
                t: 0,
                msg: self.lip_msg,
            });
        }
        if self.next_rip <= self.rip_end {
            let m = self.next_rip;
            self.next_rip += 1;
            return Some(Ev {
                t: m - self.k,
                msg: m,
            });
        }
        None
    }
}

/// D3 events (own-subtree multicasts): `m` at `m - k` for `m ∈ [i, j]`,
/// except that when `i = k` the own message moves to `j - k + 1` — which in
/// time order means it is produced *last* instead of first. Increasing `t`.
struct OwnSeq {
    i: u32,
    j: u32,
    k: u32,
    next_m: u32,
    own_pending: bool,
    /// `i == k`: the own message is deferred behind the rest.
    own_last: bool,
}

impl OwnSeq {
    fn next(&mut self) -> Option<Ev> {
        if self.own_pending && !self.own_last {
            self.own_pending = false;
            return Some(Ev {
                t: self.i - self.k,
                msg: self.i,
            });
        }
        if self.next_m <= self.j {
            let m = self.next_m;
            self.next_m += 1;
            return Some(Ev {
                t: m - self.k,
                msg: m,
            });
        }
        if self.own_pending {
            self.own_pending = false;
            return Some(Ev {
                t: self.j - self.k + 1,
                msg: self.i,
            });
        }
        None
    }
}

/// D2 events: o-messages forwarded on arrival (`t_arrive = parent's send
/// time + 1`), with arrivals at `i - k` / `i - k + 1` deferred to
/// `j - k + 1` / `j - k + 2`. The parent stream is time-sorted and — by the
/// schedule's correctness — has no arrivals inside the busy window
/// `(i - k + 1, j - k + 1)`, so the deferral keeps the output sorted; the
/// merge in [`walk`] `debug_assert`s that.
struct FwdSeq<'a> {
    parent_stream: &'a [Ev],
    idx: usize,
    i: u32,
    j: u32,
    k: u32,
    enabled: bool,
}

impl FwdSeq<'_> {
    fn next(&mut self) -> Option<Ev> {
        if !self.enabled {
            return None;
        }
        while self.idx < self.parent_stream.len() {
            let e = self.parent_stream[self.idx];
            self.idx += 1;
            if e.msg >= self.i && e.msg <= self.j {
                continue; // own-subtree message: handled by D3, not forwarded
            }
            let t_arrive = e.t + 1;
            let t = if t_arrive == self.i - self.k {
                self.j - self.k + 1
            } else if t_arrive == self.i - self.k + 1 {
                self.j - self.k + 2
            } else {
                t_arrive
            };
            return Some(Ev { t, msg: e.msg });
        }
        None
    }
}

/// Walks every vertex in label order and fires `on_tx(label, t, msg,
/// to_parent, down)` once per scheduled transmission, in increasing `t`
/// within each vertex. Both generator passes share this walk, so their
/// event sequences are identical by construction.
fn walk<F: FnMut(u32, u32, u32, bool, Down)>(fl: &FlatLabels, on_tx: &mut F) {
    let n = fl.n();
    if n <= 1 {
        return;
    }
    struct Frame {
        label: u32,
        j: u32,
        stream: Vec<Ev>,
    }
    // The DFS stack: ancestors of the current vertex, each with the stream
    // of down events its children replay. Streams are recycled through a
    // pool, so live memory is O(height) vectors of O(n) events.
    let mut stack: Vec<Frame> = Vec::with_capacity(fl.height() as usize + 1);
    let mut pool: Vec<Vec<Ev>> = Vec::new();

    for label in 0..n as u32 {
        while stack.last().is_some_and(|f| f.j < label) {
            let mut s = stack.pop().expect("nonempty stack").stream;
            s.clear();
            pool.push(s);
        }
        let i = label;
        let j = fl.j(i);
        let k = fl.k(i);
        let parent = fl.parent(i);
        let is_root = parent == NO_PARENT;
        let is_leaf = i == j;
        let kids = fl.children(i);
        debug_assert_eq!(is_root, stack.is_empty());
        debug_assert!(is_root || stack.last().map(|f| f.label) == Some(parent));

        let mut up = UpSeq {
            lip_pending: !is_root && i == parent + 1,
            lip_msg: i,
            next_rip: if is_root { 1 } else { i.max(parent + 2) },
            rip_end: if is_root { 0 } else { j },
            k,
        };
        let mut own = OwnSeq {
            i,
            j,
            k,
            next_m: i + 1,
            own_pending: !is_leaf,
            own_last: i == k,
        };
        let mut stream: Vec<Ev> = if is_leaf {
            Vec::new()
        } else {
            pool.pop().unwrap_or_default()
        };
        {
            let parent_stream: &[Ev] = stack.last().map_or(&[], |f| f.stream.as_slice());
            let mut fwd = FwdSeq {
                parent_stream,
                idx: 0,
                i,
                j,
                k,
                enabled: !is_leaf && !is_root,
            };

            let mut up_ev = up.next();
            let mut own_ev = own.next();
            let mut fwd_ev = fwd.next();
            // Containing-child cursor: D3 messages `m > i` ascend, and the
            // child subtree ranges partition `(i, j]`, so it only advances.
            let mut child_idx = 0usize;
            let mut last_t: Option<u32> = None;

            while let Some(t) = [up_ev, own_ev, fwd_ev].iter().flatten().map(|e| e.t).min() {
                debug_assert!(
                    last_t.is_none_or(|lt| t > lt),
                    "vertex {i} scheduled two transmissions at time {t}"
                );
                last_t = Some(t);
                let from_up = up_ev.is_some_and(|e| e.t == t);
                let from_own = own_ev.is_some_and(|e| e.t == t);
                let from_fwd = fwd_ev.is_some_and(|e| e.t == t);
                debug_assert!(
                    !(from_fwd && (from_up || from_own)),
                    "vertex {i} scheduled a forward and another message at time {t}"
                );
                if from_fwd {
                    let e = fwd_ev.expect("fwd event");
                    on_tx(i, t, e.msg, false, Down::All);
                    stream.push(e);
                    fwd_ev = fwd.next();
                    continue;
                }
                let down = if from_own {
                    let e = own_ev.expect("own event");
                    let d = if e.msg == i {
                        Down::All
                    } else {
                        while fl.j(kids[child_idx]) < e.msg {
                            child_idx += 1;
                        }
                        debug_assert!(kids[child_idx] <= e.msg);
                        Down::Except(kids[child_idx])
                    };
                    stream.push(e);
                    own_ev = own.next();
                    Some((e.msg, d))
                } else {
                    None
                };
                if from_up {
                    let e = up_ev.expect("up event");
                    if let Some((m_down, d)) = down {
                        // U4 + D3 merge: both carry the same message.
                        debug_assert_eq!(e.msg, m_down, "U4/D3 disagree at vertex {i} time {t}");
                        on_tx(i, t, e.msg, true, d);
                    } else {
                        on_tx(i, t, e.msg, true, Down::No);
                    }
                    up_ev = up.next();
                } else if let Some((m, d)) = down {
                    // D3-only: suppress the transmission when the only child
                    // is the one whose subtree contains the message (its
                    // entry still enters the stream vacuously — children
                    // filter own-subtree messages — but costs nothing).
                    let has_dest = match d {
                        Down::All => !kids.is_empty(),
                        Down::Except(_) => kids.len() > 1,
                        Down::No => false,
                    };
                    if has_dest {
                        on_tx(i, t, m, false, d);
                    }
                }
            }
        }
        if !is_leaf {
            stack.push(Frame {
                label: i,
                j,
                stream,
            });
        }
    }
}

/// CSR-direct ConcurrentUpDown on a prebuilt [`FlatLabels`] arena.
///
/// Byte-identical to `FlatSchedule::from_schedule(&concurrent_updown(tree))`
/// on the same tree, in O(output) time and O(output + n·height) memory.
///
/// # Panics
///
/// Panics when the schedule exceeds `u32` CSR offsets (more than
/// `u32::MAX - 1` transmissions or deliveries — gossiping delivers exactly
/// `n(n-1)` messages, so this caps at n = 65536).
pub fn concurrent_updown_flat_on(fl: &FlatLabels, recorder: &dyn Recorder) -> FlatSchedule {
    let _span = recorder.span("concurrent_updown_flat");
    let _phase = gossip_telemetry::profile::phase("generate_csr");
    let n = fl.n();
    if n <= 1 {
        return FlatSchedule::from_raw_parts(
            n,
            vec![0],
            Vec::new(),
            Vec::new(),
            vec![0],
            Vec::new(),
        );
    }

    // Pass 1: per-round transmission / delivery counts. The makespan is
    // exactly n + r (Theorem 1), so the last send fires at t = n + r - 1;
    // allocate a couple of slack rounds and trim by the observed max.
    let slots = n + fl.height() as usize + 2;
    let mut tx_per_round = vec![0u32; slots];
    let mut deliv_per_round = vec![0u32; slots];
    let mut max_t = 0u32;
    let mut merged_multicasts = 0u64;
    {
        let _count = gossip_telemetry::profile::phase("count_pass");
        walk(fl, &mut |label, t, _msg, to_parent, down| {
            let nc = fl.children(label).len() as u32;
            let child_dc = match down {
                Down::No => 0,
                Down::All => nc,
                Down::Except(_) => nc - 1,
            };
            tx_per_round[t as usize] += 1;
            deliv_per_round[t as usize] += to_parent as u32 + child_dc;
            if to_parent && child_dc > 0 {
                merged_multicasts += 1;
            }
            max_t = max_t.max(t);
        });
    }
    let rounds = max_t as usize + 1;
    let tx_total: u64 = tx_per_round[..rounds].iter().map(|&c| c as u64).sum();
    let deliv_total: u64 = deliv_per_round[..rounds].iter().map(|&c| c as u64).sum();
    assert!(
        tx_total < u32::MAX as u64 && deliv_total < u32::MAX as u64,
        "schedule too large to flatten: {tx_total} transmissions / {deliv_total} \
         deliveries overflow u32 CSR offsets"
    );

    // Prefix sums -> round offsets plus per-round write cursors.
    let mut round_offsets = Vec::with_capacity(rounds + 1);
    let mut tx_cursor: Vec<usize> = Vec::with_capacity(rounds);
    let mut dest_cursor: Vec<usize> = Vec::with_capacity(rounds);
    let mut tx_acc = 0u64;
    let mut dv_acc = 0u64;
    round_offsets.push(0u32);
    for t in 0..rounds {
        tx_cursor.push(tx_acc as usize);
        dest_cursor.push(dv_acc as usize);
        tx_acc += tx_per_round[t] as u64;
        dv_acc += deliv_per_round[t] as u64;
        round_offsets.push(tx_acc as u32);
    }

    // Pass 2: emit straight into the final CSR slots. The walk visits labels
    // ascending and a vertex sends at most once per round, so the per-round
    // cursors reproduce the reference flatten's within-round order exactly.
    let mut tx_msg = vec![0u32; tx_total as usize];
    let mut tx_from = vec![0u32; tx_total as usize];
    let mut dest_offsets = vec![0u32; tx_total as usize + 1];
    let mut dests = vec![0u32; deliv_total as usize];
    {
        let _emit = gossip_telemetry::profile::phase("emit_pass");
        walk(fl, &mut |label, t, msg, to_parent, down| {
            let t = t as usize;
            let idx = tx_cursor[t];
            tx_cursor[t] = idx + 1;
            tx_msg[idx] = msg;
            tx_from[idx] = fl.vertex(label);
            let dc_start = dest_cursor[t];
            let mut dc = dc_start;
            if to_parent {
                dests[dc] = fl.vertex(fl.parent(label));
                dc += 1;
            }
            match down {
                Down::No => {}
                Down::All => {
                    for &c in fl.children(label) {
                        dests[dc] = fl.vertex(c);
                        dc += 1;
                    }
                }
                Down::Except(skip) => {
                    for &c in fl.children(label) {
                        if c != skip {
                            dests[dc] = fl.vertex(c);
                            dc += 1;
                        }
                    }
                }
            }
            // `Transmission::new` normalizes destination sets to ascending
            // vertex id (the kernel binary-searches them); match it here.
            dests[dc_start..dc].sort_unstable();
            dest_cursor[t] = dc;
            dest_offsets[idx + 1] = dc as u32;
        });
    }
    debug_assert_eq!(tx_cursor.last().copied(), Some(tx_total as usize));
    debug_assert_eq!(dest_cursor.last().copied(), Some(deliv_total as usize));

    gossip_telemetry::profile::count("transmissions", tx_total);
    if recorder.enabled() {
        recorder.counter("generate/transmissions", tx_total);
        recorder.counter("generate/deliveries", deliv_total);
        recorder.counter("generate/merged_multicasts", merged_multicasts);
        recorder.gauge("generate/makespan", rounds as f64);
    }
    FlatSchedule::from_raw_parts(n, round_offsets, tx_msg, tx_from, dest_offsets, dests)
}

/// Builds the ConcurrentUpDown schedule for `tree` directly in
/// [`FlatSchedule`] form — equal (including [`FlatSchedule::digest`]) to
/// flattening [`concurrent_updown`](crate::concurrent_updown), without ever
/// materializing the intermediate `Schedule`.
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::{concurrent_updown, concurrent_updown_flat};
/// use gossip_model::FlatSchedule;
///
/// let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3]).unwrap();
/// let fast = concurrent_updown_flat(&tree);
/// let reference = FlatSchedule::from_schedule(&concurrent_updown(&tree));
/// assert_eq!(fast, reference);
/// ```
pub fn concurrent_updown_flat(tree: &RootedTree) -> FlatSchedule {
    concurrent_updown_flat_recorded(tree, &NoopRecorder)
}

/// [`concurrent_updown_flat`] with telemetry: `label_flat` and
/// `generate_csr` (`count_pass` / `emit_pass`) phases plus the same
/// `generate/*` counters the reference generator records.
pub fn concurrent_updown_flat_recorded(tree: &RootedTree, recorder: &dyn Recorder) -> FlatSchedule {
    let labels = {
        let _s = recorder.span("labeling");
        FlatLabels::new(tree)
    };
    concurrent_updown_flat_on(&labels, recorder)
}

/// A complete fast-path gossip plan: like
/// [`GossipPlan`](crate::GossipPlan) but carrying the schedule in flat CSR
/// form (the `Vec`-of-`Vec` `Schedule` is never built).
#[derive(Debug, Clone)]
pub struct FastGossipPlan {
    /// The minimum-depth spanning tree all communication runs on.
    pub tree: RootedTree,
    /// The communication schedule, CSR-flat, in vertex space.
    pub schedule: FlatSchedule,
    /// `origin_of_message[m]` = the processor whose message is labeled `m`.
    pub origin_of_message: Vec<usize>,
    /// The network radius `r` (= tree height).
    pub radius: u32,
}

impl FastGossipPlan {
    /// The schedule's total communication time.
    pub fn makespan(&self) -> usize {
        self.schedule.rounds()
    }

    /// The paper's guarantee for this plan: `n + r`.
    pub fn guarantee(&self) -> usize {
        if self.tree.n() <= 1 {
            0
        } else {
            self.tree.n() + self.radius as usize
        }
    }
}

/// Builds a [`FastGossipPlan`] on a caller-supplied spanning tree.
pub(crate) fn fast_plan_on_tree(tree: RootedTree, recorder: &dyn Recorder) -> FastGossipPlan {
    let schedule = concurrent_updown_flat_recorded(&tree, recorder);
    FastGossipPlan {
        origin_of_message: tree_origins(&tree),
        radius: tree.height(),
        tree,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::concurrent_updown;
    use gossip_graph::NO_PARENT;
    use gossip_model::CommModel;

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    fn assert_matches_reference(tree: &RootedTree) {
        let fast = concurrent_updown_flat(tree);
        let reference = FlatSchedule::from_schedule(&concurrent_updown(tree));
        assert_eq!(fast, reference, "CSR mismatch on {tree:?}");
        assert_eq!(fast.digest(), reference.digest());
        fast.validate(&tree.to_graph(), CommModel::Multicast, tree.n())
            .expect("fast schedule must validate");
    }

    #[test]
    fn matches_reference_flatten_on_fig5() {
        let tree = fig5();
        assert_matches_reference(&tree);
        let fast = concurrent_updown_flat(&tree);
        assert_eq!(fast.rounds(), 16 + 3); // n + r
    }

    #[test]
    fn matches_reference_on_structured_trees() {
        // Path of 7 rooted at the center.
        assert_matches_reference(
            &RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap(),
        );
        // Path of 5 rooted at an end (every vertex on the leftmost path:
        // exercises the i = k exception at every level).
        assert_matches_reference(&RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 3]).unwrap());
        // Star (every non-root a leaf; the root multicasts everything).
        let mut star = vec![0u32; 9];
        star[0] = NO_PARENT;
        assert_matches_reference(&RootedTree::from_parents(0, &star).unwrap());
        // Caterpillar: spine 0-1-2-3, one leaf per spine vertex.
        assert_matches_reference(
            &RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2, 0, 1, 2, 3]).unwrap(),
        );
        // Permuted vertex ids: label space != vertex space.
        assert_matches_reference(&RootedTree::from_parents(2, &[2, 0, NO_PARENT, 2, 3]).unwrap());
        // Pair.
        assert_matches_reference(&RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap());
    }

    #[test]
    fn matches_reference_on_synthetic_families() {
        // Binary-ish heap shapes and skewed mixed trees, a few hundred
        // vertices: deep D2 deferral chains and single-child vertices.
        for n in [33usize, 100, 257] {
            let mut p: Vec<u32> = (0..n).map(|v| (v.saturating_sub(1) / 2) as u32).collect();
            p[0] = NO_PARENT;
            assert_matches_reference(&RootedTree::from_parents(0, &p).unwrap());

            // Mixed: alternate chain and fan parents.
            let mut q: Vec<u32> = Vec::with_capacity(n);
            q.push(NO_PARENT);
            for v in 1..n {
                let par = if v % 3 == 0 { v - 1 } else { v / 3 };
                q.push(par as u32);
            }
            assert_matches_reference(&RootedTree::from_parents(0, &q).unwrap());
        }
    }

    #[test]
    fn singleton_is_empty() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        let fast = concurrent_updown_flat(&t);
        assert_eq!(fast.rounds(), 0);
        assert_eq!(fast.tx_count(), 0);
        assert_eq!(fast, FlatSchedule::from_schedule(&concurrent_updown(&t)));
    }

    #[test]
    fn flat_labels_round_trip() {
        let tree = fig5();
        let fl = FlatLabels::new(&tree);
        assert_eq!(fl.n(), 16);
        assert_eq!(fl.height(), 3);
        assert_eq!(fl.children(0), &[1, 4, 11]);
        assert_eq!(fl.children(4), &[5, 8]);
        assert_eq!(fl.children(3), &[] as &[u32]);
        assert_eq!(fl.j(4), 10);
        assert_eq!(fl.k(8), 2);
        assert_eq!(fl.parent(0), NO_PARENT);
        assert_eq!(fl.parent(5), 4);
        assert_eq!(fl.origins(), tree_origins(&tree));
    }
}
