//! Algorithm **Simple** (the paper's §3.2 warm-up, Lemma 1): gossip in a
//! tree in exactly `2n + r - 3` rounds.
//!
//! Phase 1 (up): message `i >= 1`, originating at level `k_i`, is relayed
//! upward so that the vertex at level `l` on its root path sends it at time
//! `i - l`; the root receives message `i` at time `i`, so all messages are
//! in by time `n - 1`.
//!
//! Phase 2 (down): at time `n - 2 + m` the root multicasts message `m` to
//! all its children; every non-root vertex forwards each message to all its
//! children in the same round it arrives. The last delivery is message
//! `n - 1` reaching level `r` at time `2n + r - 3`.

use crate::labeling::LabelView;
use gossip_graph::RootedTree;
use gossip_model::{Schedule, Transmission};
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};

/// Builds the Simple schedule for `tree` (vertex space, origin table
/// [`crate::tree_origins`]).
///
/// Makespan: exactly `2n + r - 3` for `n >= 2` (0 for a single vertex).
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::{simple_gossip, tree_origins};
/// use gossip_model::simulate_gossip;
///
/// // A 5-path rooted at its center: n = 5, r = 2.
/// let tree = RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap();
/// let s = simple_gossip(&tree);
/// assert_eq!(s.makespan(), 2 * 5 + 2 - 3);
/// let g = tree.to_graph();
/// assert!(simulate_gossip(&g, &s, &tree_origins(&tree)).unwrap().complete);
/// ```
pub fn simple_gossip(tree: &RootedTree) -> Schedule {
    simple_gossip_recorded(tree, &NoopRecorder)
}

/// [`simple_gossip`] with telemetry: a `simple` span with `phase_up` /
/// `phase_down` child spans and `generate/*` counters for the transmissions
/// and deliveries scheduled.
pub fn simple_gossip_recorded(tree: &RootedTree, recorder: &dyn Recorder) -> Schedule {
    let _span = recorder.span("simple");
    let _phase = gossip_telemetry::profile::phase("generate");
    let lv = LabelView::new(tree);
    let n = lv.n();
    let mut schedule = Schedule::new(n);
    if n <= 1 {
        return schedule;
    }

    // Phase 1 — up. Vertex with label v (level k) relays every message of
    // its subtree except its own... including its own: it sends message m
    // (for m in [i, j], m >= 1) to its parent at time m - k.
    {
        let _up = recorder.span("phase_up");
        let _p = gossip_telemetry::profile::phase("phase_up");
        for label in lv.labels() {
            let p = lv.params(label);
            if p.is_root() {
                continue;
            }
            let vertex = lv.vertex(label);
            let parent = lv.vertex(p.parent_i);
            for m in p.i..=p.j {
                let t = (m - p.k) as usize;
                schedule.add_transmission(t, Transmission::unicast(m, vertex, parent));
            }
        }
    }

    // Phase 2 — down. Vertex at level k multicasts message m to all its
    // children at time n - 2 + m + k (the root sends first; descendants
    // forward on arrival).
    {
        let _down = recorder.span("phase_down");
        let _p = gossip_telemetry::profile::phase("phase_down");
        for label in lv.labels() {
            let p = lv.params(label);
            if p.is_leaf() {
                continue;
            }
            let vertex = lv.vertex(label);
            let dests: Vec<usize> = lv.children(label).iter().map(|&c| lv.vertex(c)).collect();
            for m in 0..n as u32 {
                let t = n - 2 + m as usize + p.k as usize;
                schedule.add_transmission(t, Transmission::new(m, vertex, dests.clone()));
            }
        }
    }

    schedule.trim();
    if recorder.enabled() || gossip_telemetry::profile::active() {
        let stats = schedule.stats();
        gossip_telemetry::profile::count("transmissions", stats.transmissions as u64);
        if recorder.enabled() {
            recorder.counter("generate/transmissions", stats.transmissions as u64);
            recorder.counter("generate/deliveries", stats.deliveries as u64);
            recorder.gauge("generate/makespan", schedule.makespan() as f64);
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::tree_origins;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::simulate_gossip;

    fn check(tree: &RootedTree) -> usize {
        let s = simple_gossip(tree);
        let g = tree.to_graph();
        let outcome = simulate_gossip(&g, &s, &tree_origins(tree)).unwrap();
        assert!(outcome.complete);
        s.makespan()
    }

    #[test]
    fn lemma_1_exact_makespan() {
        // 2n + r - 3 across assorted tree shapes.
        let fig5 = {
            let mut p = vec![0u32; 16];
            for (v, par) in [
                (1, 0),
                (2, 1),
                (3, 1),
                (4, 0),
                (5, 4),
                (6, 5),
                (7, 5),
                (8, 4),
                (9, 8),
                (10, 8),
                (11, 0),
                (12, 11),
                (13, 12),
                (14, 12),
                (15, 11),
            ] {
                p[v] = par;
            }
            p[0] = NO_PARENT;
            RootedTree::from_parents(0, &p).unwrap()
        };
        assert_eq!(check(&fig5), 2 * 16 + 3 - 3);

        let star = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 0]).unwrap();
        assert_eq!(check(&star), 2 * 5 + 1 - 3);

        let path_end = RootedTree::from_parents(0, &[NO_PARENT, 0, 1, 2]).unwrap();
        assert_eq!(check(&path_end), 2 * 4 + 3 - 3);
    }

    #[test]
    fn pair() {
        let t = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        assert_eq!(check(&t), 2 * 2 + 1 - 3);
    }

    #[test]
    fn singleton_empty() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(simple_gossip(&t).makespan(), 0);
    }

    #[test]
    fn root_receives_message_m_at_time_m() {
        // The Phase 1 invariant the paper states directly.
        let t = RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap();
        let s = simple_gossip(&t);
        let g = t.to_graph();
        let mut sim =
            gossip_model::Simulator::new(&g, gossip_model::CommModel::Multicast, &tree_origins(&t))
                .unwrap();
        for (t_now, round) in s.rounds.iter().enumerate() {
            sim.step(round).unwrap();
            // After executing round t_now (receives land at t_now + 1), the
            // root holds messages 0..=t_now + 1 (clamped).
            let held = sim.holds(2);
            for m in 0..=(t_now + 1).min(4) {
                assert!(held.contains(m), "root missing {m} at time {}", t_now + 1);
            }
        }
    }
}
