//! Algorithm **UpDown** — reconstruction of the paper's two-phase baseline
//! (Gonzalez, PDCS 2000, cited as \[15\]).
//!
//! The journal text describes it as: "like in the algorithm Simple, all the
//! messages are propagated to the root, but, at the same time, it begins the
//! process of propagating messages to other parts of the tree. In the second
//! phase, the algorithm just propagates down some messages that got stuck in
//! the network." The original's exact schedule is not recoverable (PDCS
//! 2000 is unavailable); this reconstruction keeps the defining behaviour —
//! eager concurrent down-propagation *without* ConcurrentUpDown's lookahead
//! messages, so down-traffic stalls behind busy up-phase receivers — via a
//! greedy earliest-free-slot flood (the crate-private `flood` module).
//!
//! Its makespan always lies in `[n - 1, 2n + r - 3]`: eager flooding never
//! loses to algorithm Simple's wait-for-everything down phase, and `n - 1`
//! is the universal lower bound. On deep trees it trails ConcurrentUpDown
//! (messages stall behind busy up-phase receivers); on very shallow trees
//! the greedy can beat `n + r` by a round or two, because ConcurrentUpDown
//! pays a uniform `+1` for deferring the root's own message.

use gossip_graph::RootedTree;
use gossip_model::Schedule;
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};

/// Builds the UpDown schedule for `tree` (vertex space, origin table
/// [`crate::tree_origins`]).
///
/// # Examples
///
/// ```
/// use gossip_graph::{RootedTree, NO_PARENT};
/// use gossip_core::{updown_gossip, concurrent_updown, simple_gossip};
///
/// let tree = RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap();
/// let ud = updown_gossip(&tree).makespan();
/// assert!(ud >= tree.n() - 1); // universal lower bound
/// assert!(ud <= simple_gossip(&tree).makespan());
/// ```
pub fn updown_gossip(tree: &RootedTree) -> Schedule {
    updown_gossip_recorded(tree, &NoopRecorder)
}

/// [`updown_gossip`] with telemetry: an `updown` span around the greedy
/// flood plus `generate/*` counters for the transmissions and deliveries
/// scheduled.
pub fn updown_gossip_recorded(tree: &RootedTree, recorder: &dyn Recorder) -> Schedule {
    let _span = recorder.span("updown");
    let _phase = gossip_telemetry::profile::phase("generate");
    let schedule = crate::flood::eager_flood_gossip(tree, true);
    if recorder.enabled() || gossip_telemetry::profile::active() {
        let stats = schedule.stats();
        gossip_telemetry::profile::count("transmissions", stats.transmissions as u64);
        if recorder.enabled() {
            recorder.counter("generate/transmissions", stats.transmissions as u64);
            recorder.counter("generate/deliveries", stats.deliveries as u64);
            recorder.gauge("generate/makespan", schedule.makespan() as f64);
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{concurrent_updown, tree_origins};
    use crate::simple::simple_gossip;
    use gossip_graph::{RootedTree, NO_PARENT};
    use gossip_model::simulate_gossip;

    fn fig5() -> RootedTree {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        RootedTree::from_parents(0, &p).unwrap()
    }

    #[test]
    fn completes_and_sits_between_the_bounds() {
        for tree in [
            fig5(),
            RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 0, 0, 0]).unwrap(),
            RootedTree::from_parents(3, &[1, 2, 3, NO_PARENT, 3, 4, 5]).unwrap(),
        ] {
            let s = updown_gossip(&tree);
            let g = tree.to_graph();
            let outcome = simulate_gossip(&g, &s, &tree_origins(&tree)).unwrap();
            assert!(outcome.complete);
            let n = tree.n();
            let r = tree.height() as usize;
            assert_eq!(concurrent_updown(&tree).makespan(), n + r);
            let hi = simple_gossip(&tree).makespan();
            assert_eq!(hi, 2 * n + r - 3);
            let mid = s.makespan();
            assert!(mid >= n - 1, "updown {mid} beat the universal bound");
            assert!(mid <= hi, "updown {mid} worse than Simple {hi}");
        }
    }

    #[test]
    fn singleton_and_pair() {
        let t1 = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(updown_gossip(&t1).makespan(), 0);
        let t2 = RootedTree::from_parents(0, &[NO_PARENT, 0]).unwrap();
        let s = updown_gossip(&t2);
        let g = t2.to_graph();
        assert!(
            simulate_gossip(&g, &s, &tree_origins(&t2))
                .unwrap()
                .complete
        );
    }
}
