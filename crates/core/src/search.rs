//! Schedule search beyond the tree algorithms: a structured optimal
//! schedule for the Petersen graph, and a randomized greedy searcher for
//! small networks.
//!
//! §1 of the paper claims two things about optimal (`n - 1`-round)
//! gossiping without a Hamiltonian circuit:
//!
//! - the **Petersen graph** (Fig 2) gossips in `n - 1 = 9` rounds *even
//!   under the telephone model*;
//! - some network `N_3` (Fig 3) gossips in `n - 1` rounds under multicast
//!   but not under telephone.
//!
//! [`petersen_gossip_schedule`] reconstructs the first claim exactly: the
//! Petersen graph decomposes into an outer 5-cycle, an inner 5-cycle (the
//! pentagram), and a perfect matching of spokes. Rotating both cycles for 4
//! rounds completes gossip *within* each cycle; 5 rounds of spoke exchanges
//! then swap the two halves' message sets, one message per round — total
//! `4 + 5 = 9 = n - 1`, all unicasts.
//!
//! For the second claim, the experiments use `K_{2,3}` with the exact
//! solver (see `exp_n3` in the bench crate); the randomized searcher here
//! provides constructive witnesses on this and other small graphs.

use gossip_graph::Graph;
use gossip_model::{BitSet, CommModel, Schedule, Transmission};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The optimal 9-round telephone-legal gossip schedule for the Petersen
/// graph as built by [`gossip_workloads`-style labeling]: vertices 0–4 the
/// outer cycle, 5–9 the inner pentagram (`5 + i ~ 5 + (i + 2) mod 5`),
/// spokes `i ~ i + 5`. Message ids equal vertex ids (identity origins).
///
/// Rounds 0–3 rotate both cycles clockwise (each vertex forwards the newest
/// message of its own cycle); rounds 4–8 exchange accumulated messages
/// across the spokes in originating order.
pub fn petersen_gossip_schedule() -> Schedule {
    let mut s = Schedule::new(10);
    // Rounds 0..=3: cycle rotations. At round t, outer vertex p forwards the
    // message that originated t positions counter-clockwise; likewise the
    // inner pentagram under its own cyclic order (5, 7, 9, 6, 8).
    let inner_cycle = [5usize, 7, 9, 6, 8];
    for t in 0..4 {
        for p in 0..5 {
            let msg = ((p + 5 - t) % 5) as u32;
            s.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % 5));
        }
        for idx in 0..5 {
            let from = inner_cycle[idx];
            let to = inner_cycle[(idx + 1) % 5];
            let msg = inner_cycle[(idx + 5 - t) % 5] as u32;
            s.add_transmission(t, Transmission::unicast(msg, from, to));
        }
    }
    // Rounds 4..=8: spoke exchanges. Outer vertex i sends outer message
    // (i + c) mod 5 to its partner i + 5, which replies with inner message
    // 5 + ((i + c) mod 5); c walks 0..5.
    for c in 0..5 {
        let t = 4 + c;
        for i in 0..5 {
            let outer_msg = ((i + c) % 5) as u32;
            let inner_msg = (5 + (i + c) % 5) as u32;
            s.add_transmission(t, Transmission::unicast(outer_msg, i, i + 5));
            s.add_transmission(t, Transmission::unicast(inner_msg, i + 5, i));
        }
    }
    s
}

/// Result of a randomized search attempt.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best complete schedule found.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: usize,
}

/// Randomized greedy gossip search: repeatedly builds complete schedules by
/// filling each round with a randomized maximal set of useful transmissions
/// (receivers ranked by how much they miss, messages by scarcity), and keeps
/// the shortest. Returns `None` only if `g` is disconnected or has no
/// vertices.
///
/// This is a *search tool*, not an approximation algorithm: use it to find
/// constructive witnesses of small optimal schedules (e.g. `n - 1` rounds
/// on `K_{2,3}` under multicast).
pub fn randomized_gossip_search(
    g: &Graph,
    model: CommModel,
    attempts: usize,
    seed: u64,
) -> Option<SearchOutcome> {
    let n = g.n();
    if n == 0 || !gossip_graph::is_connected(g) {
        return None;
    }
    if n == 1 {
        return Some(SearchOutcome {
            schedule: Schedule::new(1),
            makespan: 0,
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<SearchOutcome> = None;
    let round_cap = 4 * n + 8;

    for _ in 0..attempts.max(1) {
        if let Some(outcome) = one_attempt(g, model, round_cap, &mut rng) {
            let better = best.as_ref().is_none_or(|b| outcome.makespan < b.makespan);
            if better {
                best = Some(outcome);
            }
        }
    }
    best
}

fn one_attempt(
    g: &Graph,
    model: CommModel,
    round_cap: usize,
    rng: &mut SmallRng,
) -> Option<SearchOutcome> {
    let n = g.n();
    let telephone = matches!(model, CommModel::Telephone);
    let mut hold: Vec<BitSet> = (0..n)
        .map(|p| {
            let mut b = BitSet::new(n);
            b.insert(p);
            b
        })
        .collect();
    let mut holders = vec![1usize; n]; // how many processors hold message m
    let mut schedule = Schedule::new(n);

    for t in 0..round_cap {
        if hold.iter().all(BitSet::is_full) {
            schedule.trim();
            let makespan = schedule.makespan();
            return Some(SearchOutcome { schedule, makespan });
        }
        // Receivers: not-yet-full processors, most-missing first with random
        // tie-breaks.
        let mut receivers: Vec<usize> = (0..n).filter(|&p| !hold[p].is_full()).collect();
        receivers.shuffle(rng);
        receivers.sort_by_key(|&p| hold[p].len());

        let mut sending: Vec<Option<u32>> = vec![None; n];
        let mut dests: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut receiving = vec![false; n];

        for &r in &receivers {
            if receiving[r] {
                continue;
            }
            // Candidate (sender, msg): scarcest message wins; random jitter
            // breaks ties to diversify attempts.
            let mut best_opt: Option<(usize, u32, usize, u32)> = None; // (s, m, holders, jitter)
            for s in g.neighbors(r) {
                match sending[s] {
                    Some(m) => {
                        if telephone || hold[r].contains(m as usize) {
                            continue;
                        }
                        let score = (holders[m as usize], rng.gen::<u32>());
                        if best_opt.is_none_or(|(_, _, h, j)| score < (h, j)) {
                            best_opt = Some((s, m, score.0, score.1));
                        }
                    }
                    None => {
                        for m in hold[s].iter() {
                            if hold[r].contains(m) {
                                continue;
                            }
                            let score = (holders[m], rng.gen::<u32>());
                            if best_opt.is_none_or(|(_, _, h, j)| score < (h, j)) {
                                best_opt = Some((s, m as u32, score.0, score.1));
                            }
                        }
                    }
                }
            }
            if let Some((s, m, _, _)) = best_opt {
                sending[s] = Some(m);
                dests[s].push(r);
                receiving[r] = true;
            }
        }

        let mut any = false;
        for s in 0..n {
            if let Some(m) = sending[s] {
                any = true;
                for &d in &dests[s] {
                    if hold[d].insert(m as usize) {
                        holders[m as usize] += 1;
                    }
                }
                schedule.add_transmission(t, Transmission::new(m, s, dests[s].clone()));
            }
        }
        if !any {
            return None; // stuck (cannot happen on connected graphs, but be safe)
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::{identity_origins, validate_gossip_schedule};

    fn petersen() -> Graph {
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5));
            edges.push((5 + i, 5 + (i + 2) % 5));
            edges.push((i, i + 5));
        }
        Graph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn petersen_schedule_is_optimal_and_telephone_legal() {
        let g = petersen();
        let s = petersen_gossip_schedule();
        assert_eq!(s.makespan(), 9); // n - 1: optimal
        let o =
            validate_gossip_schedule(&g, &s, &identity_origins(10), CommModel::Telephone).unwrap();
        assert!(o.complete);
        assert_eq!(o.completion_time, Some(9));
    }

    #[test]
    fn random_search_completes_on_small_graphs() {
        let ring5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let out = randomized_gossip_search(&ring5, CommModel::Multicast, 50, 7).unwrap();
        assert!(out.makespan >= 4);
        let o = validate_gossip_schedule(
            &ring5,
            &out.schedule,
            &identity_origins(5),
            CommModel::Multicast,
        )
        .unwrap();
        assert!(o.complete);
    }

    #[test]
    fn random_search_finds_n_minus_1_on_k23() {
        // K_{2,3}: parts {0, 1} and {2, 3, 4} — the N_3 substitute.
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
        let out = randomized_gossip_search(&g, CommModel::Multicast, 400, 11).unwrap();
        assert_eq!(out.makespan, 4, "expected an n - 1 witness on K_2,3");
    }

    #[test]
    fn telephone_search_legal() {
        let g = petersen();
        let out = randomized_gossip_search(&g, CommModel::Telephone, 30, 3).unwrap();
        let o = validate_gossip_schedule(
            &g,
            &out.schedule,
            &identity_origins(10),
            CommModel::Telephone,
        )
        .unwrap();
        assert!(o.complete);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(randomized_gossip_search(&g, CommModel::Multicast, 5, 0).is_none());
    }

    #[test]
    fn singleton() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let out = randomized_gossip_search(&g, CommModel::Multicast, 1, 0).unwrap();
        assert_eq!(out.makespan, 0);
    }
}
