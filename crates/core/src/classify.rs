//! Message classification (the paper's §3.2 vocabulary).
//!
//! Relative to a vertex `v` with subtree range `[i, j]`, every message is
//! either an *o-message* (originating outside the subtree) or a *b-message*
//! (inside); b-messages split into the *s-message* (`i` itself), the
//! *l-message* (`i + 1`, the lookahead), and *r-messages* (the rest).
//! Relative to `v`'s parent, `i` may additionally be the *lip-message*
//! (lookahead-in-parent, when `i = i' + 1`) and the tail of the b-messages
//! are *rip-messages* (remaining-in-parent).

use crate::labeling::VertexParams;

/// The class of a message with respect to one vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageClass {
    /// Originates outside the vertex's subtree (`m < i` or `m > j`).
    Other,
    /// The vertex's own message (`m == i`).
    Start,
    /// The lookahead message (`m == i + 1 <= j`).
    Lookahead,
    /// A remaining b-message (`i + 2 <= m <= j`).
    Remaining,
}

/// Classifies message `m` relative to the vertex described by `p`.
pub fn classify(p: &VertexParams, m: u32) -> MessageClass {
    if m < p.i || m > p.j {
        MessageClass::Other
    } else if m == p.i {
        MessageClass::Start
    } else if m == p.i + 1 {
        MessageClass::Lookahead
    } else {
        MessageClass::Remaining
    }
}

/// Whether message `m` is the vertex's *lip-message* (sent to the parent at
/// time 0 by Propagate-Up step U3).
pub fn is_lip(p: &VertexParams, m: u32) -> bool {
    !p.is_root() && m == p.i && p.has_lip()
}

/// Whether message `m` is one of the vertex's *rip-messages* (sent to the
/// parent at time `m - k` by Propagate-Up step U4).
pub fn is_rip(p: &VertexParams, m: u32) -> bool {
    !p.is_root() && m >= p.rip_start() && m <= p.j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(i: u32, j: u32, k: u32, parent_i: u32, parent_j: u32) -> VertexParams {
        VertexParams {
            i,
            j,
            k,
            parent_i,
            parent_j,
        }
    }

    #[test]
    fn classes_partition_messages() {
        // Vertex 4 of Fig 5: range [4, 10], parent root [0, 15].
        let p = params(4, 10, 1, 0, 15);
        let n = 16;
        let mut counts = [0usize; 4];
        for m in 0..n {
            match classify(&p, m) {
                MessageClass::Other => counts[0] += 1,
                MessageClass::Start => counts[1] += 1,
                MessageClass::Lookahead => counts[2] += 1,
                MessageClass::Remaining => counts[3] += 1,
            }
        }
        assert_eq!(counts, [9, 1, 1, 5]);
    }

    #[test]
    fn leaf_has_no_lookahead() {
        let p = params(3, 3, 3, 2, 3);
        assert_eq!(classify(&p, 3), MessageClass::Start);
        assert_eq!(classify(&p, 4), MessageClass::Other);
        assert_eq!(classify(&p, 2), MessageClass::Other);
    }

    #[test]
    fn lip_and_rip_for_first_child() {
        // Vertex 1 of Fig 5: [1, 3] under the root [0, 15]; 1 == 0 + 1.
        let p = params(1, 3, 1, 0, 15);
        assert!(is_lip(&p, 1));
        assert!(!is_rip(&p, 1));
        assert!(is_rip(&p, 2));
        assert!(is_rip(&p, 3));
        assert!(!is_rip(&p, 4));
    }

    #[test]
    fn lip_and_rip_for_non_first_child() {
        // Vertex 8 of Fig 5: [8, 10] under vertex 4 [4, 10]; 8 != 5.
        let p = params(8, 10, 2, 4, 10);
        assert!(!is_lip(&p, 8));
        assert!(is_rip(&p, 8));
        assert!(is_rip(&p, 10));
    }

    #[test]
    fn every_b_message_is_lip_or_rip_exactly_once() {
        // Paper invariant behind Lemma 2's induction: each b-message of the
        // parent is a lip or rip message in exactly one child.
        for p in [
            params(1, 3, 1, 0, 15),
            params(4, 10, 1, 0, 15),
            params(8, 10, 2, 4, 10),
            params(5, 7, 2, 4, 10),
        ] {
            for m in p.i..=p.j {
                let l = is_lip(&p, m);
                let r = is_rip(&p, m);
                if m == p.i && p.has_lip() {
                    assert!(l && !r, "m = {m}");
                } else if m >= p.rip_start() {
                    assert!(!l && r, "m = {m}");
                }
            }
        }
    }

    #[test]
    fn root_has_neither_lip_nor_rip() {
        let p = params(0, 15, 0, u32::MAX, u32::MAX);
        assert!(!is_lip(&p, 0));
        assert!(!is_rip(&p, 5));
    }
}
