//! Property tests for the extension modules: annotated schedules,
//! broadcast primitives, the broadcast-model greedy, compaction of
//! algorithm output, and pipelined overlays — all over random trees and
//! graphs.

use gossip_core::{
    annotated_concurrent_updown, annotated_to_schedule, broadcast_model_gossip, broadcast_schedule,
    concurrent_updown, multi_broadcast_schedule, pipelined_gossip, tree_origins, updown_gossip,
};
use gossip_graph::{bfs, GraphBuilder, RootedTree, NO_PARENT};
use gossip_model::{
    compact_schedule, identity_origins, validate_gossip_schedule, verify_compaction, CommModel,
    Simulator,
};
use proptest::prelude::*;

fn arb_tree(max_n: usize) -> impl Strategy<Value = RootedTree> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut parent = vec![NO_PARENT; n];
            for (i, p) in ps.into_iter().enumerate() {
                parent[i + 1] = p;
            }
            RootedTree::from_parents(0, &parent).expect("valid tree")
        })
    })
}

fn arb_connected(max_n: usize) -> impl Strategy<Value = gossip_graph::Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (
            parents,
            proptest::collection::vec(proptest::bool::weighted(0.2), len),
        )
            .prop_map(move |(ps, mask)| {
                let mut b = GraphBuilder::new(n);
                let mut present = std::collections::HashSet::new();
                for (i, p) in ps.into_iter().enumerate() {
                    b.add_edge_unchecked(p, i + 1).unwrap();
                    present.insert((p.min(i + 1), p.max(i + 1)));
                }
                for (on, &(u, v)) in mask.iter().zip(&pairs) {
                    if *on && !present.contains(&(u, v)) {
                        b.add_edge_unchecked(u, v).unwrap();
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The annotated schedule always forgets to exactly the plain one.
    #[test]
    fn annotated_equals_plain(tree in arb_tree(20)) {
        let ann = annotated_concurrent_updown(&tree);
        let mut forgotten = annotated_to_schedule(&ann, tree.n());
        forgotten.normalize();
        let mut plain = concurrent_updown(&tree);
        plain.normalize();
        prop_assert_eq!(forgotten, plain);
    }

    /// Broadcast from every source takes exactly the source's eccentricity
    /// on random connected graphs.
    #[test]
    fn broadcast_eccentricity(g in arb_connected(12)) {
        for source in 0..g.n() {
            let (s, time) = broadcast_schedule(&g, source);
            let ecc = bfs(&g, source).eccentricity().unwrap() as usize;
            prop_assert_eq!(time, ecc);
            prop_assert_eq!(s.makespan(), ecc);
        }
    }

    /// Multi-message broadcast obeys the pipelining bound k - 1 + ecc and
    /// delivers every message everywhere.
    #[test]
    fn multi_broadcast_pipelines(g in arb_connected(10), k in 1usize..5) {
        let source = 0;
        let (s, time) = multi_broadcast_schedule(&g, source, k);
        let ecc = bfs(&g, source).eccentricity().unwrap() as usize;
        prop_assert_eq!(time, if g.n() == 1 { 0 } else { k - 1 + ecc });
        let origins = vec![source; k];
        let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
        sim.run(&s).unwrap();
        for m in 0..k {
            prop_assert!(sim.everyone_holds(m));
        }
    }

    /// The broadcast-model greedy always completes, validates under the
    /// Broadcast restriction, and respects the universal bound.
    #[test]
    fn broadcast_model_valid(g in arb_connected(10)) {
        let s = broadcast_model_gossip(&g);
        let o = validate_gossip_schedule(&g, &s, &identity_origins(g.n()), CommModel::Broadcast)
            .unwrap();
        prop_assert!(o.complete);
        prop_assert!(s.makespan() >= g.n() - 1);
    }

    /// Compaction of any algorithm's schedule preserves completion, never
    /// increases the makespan, and never drops below the universal bound.
    /// ConcurrentUpDown is redundancy-free (zero pruned deliveries) always;
    /// on tiny trees the greedy shifter can even recover the uniform +1
    /// that the root-message deferral costs (e.g. the 2-vertex tree
    /// compacts from 3 rounds to the optimal 1).
    #[test]
    fn compaction_sound(tree in arb_tree(14)) {
        let g = tree.to_graph();
        let origins = tree_origins(&tree);
        for schedule in [concurrent_updown(&tree), updown_gossip(&tree)] {
            let report = compact_schedule(&g, &schedule, &origins).unwrap();
            prop_assert!(report.makespan_after <= report.makespan_before);
            prop_assert!(report.makespan_after >= tree.n() - 1);
            prop_assert!(verify_compaction(&g, &report, &origins).unwrap());
        }
        let cud = compact_schedule(&g, &concurrent_updown(&tree), &origins).unwrap();
        prop_assert_eq!(cud.deliveries_pruned, 0);
    }

    /// A fully serialized pipeline of k batches is always valid with the
    /// expected makespan (k - 1) * (n + r) + (n + r).
    #[test]
    fn pipelined_serialized_valid(tree in arb_tree(10), k in 1usize..4) {
        let full = tree.n() + tree.height() as usize;
        let plan = pipelined_gossip(&tree, k, full).unwrap();
        prop_assert_eq!(plan.schedule.makespan(), k * full);
        prop_assert!((plan.amortized_rounds() - full as f64).abs() < 1e-9);
    }
}
