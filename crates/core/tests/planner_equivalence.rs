//! Fast-vs-reference planner equivalence: on the same tree the CSR-direct
//! generator must be byte-identical to flattening the reference generator,
//! and through the full pipeline (fast tree sweep included) the fast plan
//! must validate with the same `n + r` makespan.

use gossip_core::{concurrent_updown, concurrent_updown_flat, GossipPlanner};
use gossip_graph::{min_depth_spanning_tree, ChildOrder, Graph};
use gossip_model::{CommModel, FlatSchedule, SimKernel};
use gossip_workloads::random_connected;
use proptest::prelude::*;

fn diff_flat(fast: &FlatSchedule, reference: &FlatSchedule) -> Option<String> {
    if fast == reference {
        return None;
    }
    if fast.rounds() != reference.rounds() {
        return Some(format!(
            "rounds differ: fast {} vs reference {}",
            fast.rounds(),
            reference.rounds()
        ));
    }
    for t in 0..fast.rounds() {
        let (fr, rr) = (fast.round_range(t), reference.round_range(t));
        if fr.len() != rr.len() {
            return Some(format!(
                "round {t}: {} vs {} transmissions",
                fr.len(),
                rr.len()
            ));
        }
        for (a, b) in fr.zip(rr) {
            if fast.msg_of(a) != reference.msg_of(b)
                || fast.from_of(a) != reference.from_of(b)
                || fast.dests_of(a) != reference.dests_of(b)
            {
                return Some(format!(
                    "round {t}: tx (msg {} from {} -> {:?}) vs (msg {} from {} -> {:?})",
                    fast.msg_of(a),
                    fast.from_of(a),
                    fast.dests_of(a),
                    reference.msg_of(b),
                    reference.from_of(b),
                    reference.dests_of(b),
                ));
            }
        }
    }
    Some("arrays differ outside per-round content (offsets/metadata)".to_string())
}

fn assert_equivalent_on(g: &Graph) {
    let tree = min_depth_spanning_tree(g, ChildOrder::ById).unwrap();
    let fast = concurrent_updown_flat(&tree);
    let reference = FlatSchedule::from_schedule(&concurrent_updown(&tree));
    if let Some(d) = diff_flat(&fast, &reference) {
        panic!("CSR mismatch on n = {}: {d}", g.n());
    }
    assert_eq!(fast.digest(), reference.digest());
}

#[test]
fn csr_direct_matches_reference_on_random_graphs() {
    for (n, p, seed) in [
        (64, 0.10, 7u64),
        (128, 0.05, 11),
        (256, 0.02, 13),
        (512, 0.05, 77),
        (512, 0.104, 77),
        (300, 0.01, 42),
    ] {
        assert_equivalent_on(&random_connected(n, p, seed));
    }
}

#[test]
fn fast_plan_validates_with_same_bound_on_random_graphs() {
    for (n, p, seed) in [(96usize, 0.08, 3u64), (200, 0.03, 9), (400, 0.015, 21)] {
        let g = random_connected(n, p, seed);
        let planner = GossipPlanner::new(&g).unwrap();
        let reference = planner.plan().unwrap();
        let fast = planner.plan_fast().unwrap();
        assert_eq!(fast.radius, reference.radius, "n = {n}");
        assert_eq!(fast.makespan(), reference.makespan(), "n = {n}");
        assert!(fast.makespan() <= fast.guarantee());
        fast.schedule.validate(&g, CommModel::Multicast, n).unwrap();
        let mut kernel =
            SimKernel::with_origins(&g, CommModel::Multicast, &fast.origin_of_message).unwrap();
        let outcome = kernel.run_prevalidated(&fast.schedule).unwrap();
        assert!(outcome.complete, "n = {n}");
        if fast.tree == reference.tree {
            let ref_flat = FlatSchedule::from_schedule(&reference.schedule);
            if let Some(d) = diff_flat(&fast.schedule, &ref_flat) {
                panic!("pipeline CSR mismatch on n = {n}: {d}");
            }
        }
    }
}

proptest! {
    // 48 cases per CI run; the nightly property job raises this through
    // the global PROPTEST_CASES override (see vendor/proptest).
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On arbitrary seeded connected G(n, p): the fast plan validates,
    /// meets the reference's exact makespan (n + r by Theorem 1), and —
    /// whenever the root tie-break picked the same tree — is
    /// byte-identical to the reference flatten.
    fn fast_and_reference_agree_on_random_connected(
        n in 4usize..72,
        p_mille in 20u64..250,
        seed in 0u64..1u64 << 48,
    ) {
        let g = random_connected(n, p_mille as f64 / 1000.0, seed);
        let planner = GossipPlanner::new(&g).unwrap();
        let reference = planner.plan().unwrap();
        let fast = planner.plan_fast().unwrap();
        prop_assert_eq!(fast.radius, reference.radius);
        prop_assert_eq!(fast.makespan(), reference.makespan());
        prop_assert!(fast.makespan() <= fast.guarantee());
        fast.schedule.validate(&g, CommModel::Multicast, n).unwrap();
        if fast.tree == reference.tree {
            let ref_flat = FlatSchedule::from_schedule(&reference.schedule);
            if let Some(d) = diff_flat(&fast.schedule, &ref_flat) {
                return Err(format!("CSR mismatch: {d}"));
            }
        }
    }
}
