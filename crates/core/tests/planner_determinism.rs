//! Seeded determinism of the fast planner: its output is a pure function
//! of the graph — independent of worker thread count (the multi-source
//! BFS reduces candidates with an exact `(eccentricity, id)` min, so the
//! chunk schedule cannot leak into the tree) and repeatable across runs.
//!
//! Everything lives in one `#[test]` because it mutates
//! `RAYON_NUM_THREADS` (read per `run_chunks` call by the vendored
//! rayon): parallel test functions in the same binary would race on it.

use gossip_core::GossipPlanner;
use gossip_workloads::random_connected;

#[test]
fn fast_planner_byte_identical_across_thread_counts() {
    for (n, p, seed) in [
        (64usize, 0.10, 7u64),
        (256, 0.03, 13),
        (512, 0.05, 77),
        (300, 0.01, 42),
    ] {
        let g = random_connected(n, p, seed);
        let planner = GossipPlanner::new(&g).unwrap();

        std::env::set_var("RAYON_NUM_THREADS", "1");
        let single = planner.plan_fast().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "3");
        let three = planner.plan_fast().unwrap();
        std::env::remove_var("RAYON_NUM_THREADS");
        let default = planner.plan_fast().unwrap();

        assert_eq!(
            single.tree, three.tree,
            "n = {n}: tree differs at 1 vs 3 threads"
        );
        assert_eq!(
            single.tree, default.tree,
            "n = {n}: tree differs at 1 vs default threads"
        );
        assert_eq!(
            single.schedule.digest(),
            default.schedule.digest(),
            "n = {n}: schedule digest differs across thread counts"
        );
        assert_eq!(single.schedule, three.schedule, "n = {n}");
        assert_eq!(single.schedule, default.schedule, "n = {n}");
        assert_eq!(
            single.origin_of_message, default.origin_of_message,
            "n = {n}"
        );

        // Same-process repeatability: planning twice at the same thread
        // count is byte-identical too.
        let again = planner.plan_fast().unwrap();
        assert_eq!(
            default.schedule, again.schedule,
            "n = {n}: re-plan diverged"
        );
    }
}
