//! Property-based tests for gossip-core internals that the facade-level
//! suites do not reach: message classification, gather, the weighted
//! expansion, schedule analysis of generated schedules, and fault
//! robustness of the validator against mutated algorithm output.

use gossip_core::{
    classify, concurrent_updown, gather_schedule, is_lip, is_rip, tree_origins, weighted_gossip,
    LabelView, MessageClass,
};
use gossip_graph::{RootedTree, NO_PARENT};
use gossip_model::{analyze_schedule, inject_fault, simulate_gossip, Fault};
use proptest::prelude::*;

fn arb_tree(max_n: usize) -> impl Strategy<Value = RootedTree> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut parent = vec![NO_PARENT; n];
            for (i, p) in ps.into_iter().enumerate() {
                parent[i + 1] = p;
            }
            RootedTree::from_parents(0, &parent).expect("valid tree")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The o/b/s/l/r classes partition messages at every vertex, with the
    /// cardinalities the paper's definitions imply.
    #[test]
    fn classification_partitions(tree in arb_tree(24)) {
        let lv = LabelView::new(&tree);
        let n = lv.n() as u32;
        for label in lv.labels() {
            let p = lv.params(label);
            let mut counts = [0usize; 4];
            for m in 0..n {
                match classify(&p, m) {
                    MessageClass::Other => counts[0] += 1,
                    MessageClass::Start => counts[1] += 1,
                    MessageClass::Lookahead => counts[2] += 1,
                    MessageClass::Remaining => counts[3] += 1,
                }
            }
            let body = (p.j - p.i + 1) as usize;
            prop_assert_eq!(counts[1], 1);
            prop_assert_eq!(counts[2], usize::from(body > 1));
            prop_assert_eq!(counts[3], body.saturating_sub(2));
            prop_assert_eq!(counts[0], n as usize - body);
            // lip/rip partition the b-messages seen from the parent.
            if !p.is_root() {
                for m in p.i..=p.j {
                    let l = is_lip(&p, m);
                    let r = is_rip(&p, m);
                    prop_assert!(l ^ r, "message {} must be lip xor rip", m);
                }
            }
        }
    }

    /// Gather delivers message m to the root at time exactly m and nothing
    /// anywhere else gains foreign messages beyond the root path.
    #[test]
    fn gather_is_optimal_everywhere(tree in arb_tree(24)) {
        let s = gather_schedule(&tree);
        prop_assert_eq!(s.makespan(), tree.n() - 1);
        let g = tree.to_graph();
        let a = analyze_schedule(&g, &s, &tree_origins(&tree)).unwrap();
        // No duplicate work in the up phase either.
        prop_assert_eq!(a.redundant_deliveries, 0);
        // Total deliveries = sum over non-root vertices of subtree size
        // (each message is relayed once per ancestor edge).
        let expected: usize = (0..tree.n())
            .filter(|&v| v != tree.root())
            .map(|v| tree.subtree_size(v))
            .sum();
        prop_assert_eq!(a.total_deliveries, expected);
    }

    /// Weighted gossip with all-ones weights is plain ConcurrentUpDown.
    #[test]
    fn weighted_unit_weights_reduce(tree in arb_tree(16)) {
        let plan = weighted_gossip(&tree, &vec![1; tree.n()]).unwrap();
        let direct = concurrent_updown(&tree);
        prop_assert_eq!(plan.schedule.makespan(), direct.makespan());
        prop_assert_eq!(plan.expanded_tree.height(), tree.height());
    }

    /// Weighted gossip completes at W + r' for arbitrary small weights.
    #[test]
    fn weighted_general(tree in arb_tree(8), seed in 0u64..50) {
        let n = tree.n();
        let weights: Vec<usize> = (0..n).map(|v| 1 + ((seed as usize + v * 7) % 3)).collect();
        let plan = weighted_gossip(&tree, &weights).unwrap();
        let g = plan.expanded_tree.to_graph();
        let o = simulate_gossip(&g, &plan.schedule, &plan.origins()).unwrap();
        prop_assert!(o.complete);
        prop_assert_eq!(
            plan.schedule.makespan(),
            plan.total_weight + plan.expanded_tree.height() as usize
        );
    }

    /// Mutating a ConcurrentUpDown schedule is always caught: either a rule
    /// violation or incompleteness (its schedules are redundancy-free, so
    /// any dropped delivery loses information).
    #[test]
    fn mutated_schedules_never_pass_silently(tree in arb_tree(10), seed in 0u64..60) {
        let s = concurrent_updown(&tree);
        let g = tree.to_graph();
        let origins = tree_origins(&tree);
        for &fault in Fault::all() {
            let Some(mutant) = inject_fault(&s, fault, &g, seed) else { continue };
            if mutant == s {
                continue;
            }
            let verdict = simulate_gossip(&g, &mutant, &origins);
            let silent_pass = matches!(&verdict, Ok(o) if o.complete);
            // ShiftEarlier of an origin's own first send can be harmless;
            // every other fault must be detected.
            if silent_pass {
                prop_assert_eq!(fault, Fault::ShiftEarlier, "undetected {:?}", fault);
            }
        }
    }

    /// The analysis of a ConcurrentUpDown schedule shows zero redundancy
    /// and per-message completion exactly when Theorem 1 predicts the last
    /// message lands.
    #[test]
    fn analysis_of_concurrent_updown(tree in arb_tree(20)) {
        let s = concurrent_updown(&tree);
        let g = tree.to_graph();
        let a = analyze_schedule(&g, &s, &tree_origins(&tree)).unwrap();
        prop_assert_eq!(a.redundant_deliveries, 0);
        prop_assert_eq!(a.last_completion(), Some(s.makespan()));
        // Message 0 (the root's) is always the last to finish.
        prop_assert_eq!(a.message_completion[0], Some(s.makespan()));
    }
}
