//! Property tests for churn-resilient execution: seeded connectivity-
//! preserving `ChurnPlan`s always heal within the final graph's `n + r`
//! bound, and a zero-event plan leaves the executor byte-identical to the
//! plain resilient baseline.

use gossip_core::{ChurnExecutor, GossipPlanner, ResilientExecutor};
use gossip_graph::GraphBuilder;
use gossip_model::{ChurnPlan, FaultPlan};
use proptest::prelude::*;

fn arb_connected(max_n: usize) -> impl Strategy<Value = gossip_graph::Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (
            parents,
            proptest::collection::vec(proptest::bool::weighted(0.2), len),
        )
            .prop_map(move |(ps, mask)| {
                let mut b = GraphBuilder::new(n);
                let mut present = std::collections::HashSet::new();
                for (i, p) in ps.into_iter().enumerate() {
                    b.add_edge_unchecked(p, i + 1).unwrap();
                    present.insert((p.min(i + 1), p.max(i + 1)));
                }
                for (on, &(u, v)) in mask.iter().zip(&pairs) {
                    if *on && !present.contains(&(u, v)) {
                        b.add_edge_unchecked(u, v).unwrap();
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An admissible generated plan on a graph that stays connected always
    /// heals: every pair is delivered and completion lands within `n + r`
    /// of the FINAL graph. When events actually fired mid-run, incremental
    /// repair replans strictly fewer entries than replan-from-scratch.
    #[test]
    fn generated_churn_always_heals(
        g in arb_connected(10),
        seed in 0u64..1_000_000,
        permille in 50u64..500,
    ) {
        let makespan = GossipPlanner::new(&g).unwrap().plan().unwrap().schedule.makespan();
        let horizon = makespan.saturating_sub(2).max(1) as u32;
        let churn = ChurnPlan::generate(&g, permille as f64 / 1000.0, seed, horizon);
        prop_assert!(churn.validate_against(&g).is_ok());
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        prop_assert!(report.recovered, "{report:?}");
        prop_assert!(report.unrecoverable.is_empty());
        prop_assert!(report.within_final_bound, "{report:?}");
        if report.events_applied > 0 {
            prop_assert!(
                report.repaired_entries < report.scratch_entries,
                "repaired {} >= scratch {}",
                report.repaired_entries,
                report.scratch_entries
            );
        }
    }

    /// A zero-event `ChurnPlan` is inert: the churn executor's transcript
    /// is byte-identical to a plain `ResilientExecutor` run of the same
    /// schedule under no faults, with nothing invalidated or replanned.
    #[test]
    fn zero_event_plan_matches_resilient_baseline(g in arb_connected(12)) {
        let churn = ChurnPlan::none();
        let report = ChurnExecutor::new(&g, &churn).run().unwrap();
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let baseline =
            ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &FaultPlan::none())
                .run()
                .unwrap();
        prop_assert!(report.recovered);
        prop_assert_eq!(&report.transcript, &baseline.transcript);
        prop_assert_eq!(report.total_rounds, baseline.total_rounds);
        prop_assert_eq!(report.events_applied, 0);
        prop_assert_eq!(report.entries_invalidated, 0);
        prop_assert_eq!(report.deliveries_invalidated, 0);
        prop_assert_eq!(report.repaired_entries, 0);
        prop_assert!(report.within_final_bound);
    }
}
