//! # gossip-telemetry
//!
//! Zero-dependency observability for the gossip workspace: counters,
//! gauges, histograms with percentile summaries, RAII nested spans, a
//! JSONL event sink, and a JSON snapshot of everything recorded.
//!
//! The [`Recorder`] trait is object-safe so instrumented code takes
//! `&dyn Recorder`; [`NoopRecorder`] short-circuits every call via
//! [`Recorder::enabled`], keeping the instrumented hot paths at
//! effectively zero cost when telemetry is off.
//!
//! ```
//! use gossip_telemetry::{MetricsRecorder, Recorder, RecorderExt};
//!
//! let recorder = MetricsRecorder::new();
//! {
//!     let _plan = recorder.span("plan");
//!     let _bfs = recorder.span("bfs"); // nested: recorded as "plan/bfs"
//!     recorder.counter("edges_relaxed", 42);
//!     recorder.gauge("radius", 3.0);
//!     recorder.observe("fanout", 2.0);
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap["counters"]["edges_relaxed"].as_u64(), Some(42));
//! assert_eq!(snap["histograms"]["fanout"]["count"].as_u64(), Some(1));
//! assert!(snap["spans"]["plan/bfs"]["count"].as_u64() == Some(1));
//! ```

// The one `unsafe impl` in this crate is the `GlobalAlloc` for the
// feature-gated counting allocator (`profile::ProfAlloc`); every build
// without `prof-alloc` keeps the blanket forbid.
#![cfg_attr(not(feature = "prof-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "prof-alloc", deny(unsafe_code))]

pub mod flight;
pub mod live;
pub mod profile;
pub mod trace;
pub mod watch;

pub use flight::{FlightHeader, FlightLog, FlightRecord, FlightRecorder, Tee};
pub use live::LiveRegistry;
pub use trace::{ChromeTrace, TraceEvent};
pub use watch::{Alert, AlertEngine, AlertSink, RuleSet, Severity};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

pub use serde_json::Value;

/// Version stamped (as `schema_version`) into every structured artifact the
/// workspace writes: metrics documents, `BENCH_*.json` payloads, provenance
/// exports, and recorder snapshots. Readers use [`check_schema_version`].
/// Chrome trace files are exempt: that format is externally specified as a
/// bare array of events.
pub const SCHEMA_VERSION: u64 = 1;

/// Validates an artifact's `schema_version`. A missing field passes (the
/// artifact predates versioning); the current [`SCHEMA_VERSION`] passes;
/// anything else is rejected with an error naming both versions so the user
/// knows which side to regenerate.
pub fn check_schema_version(artifact: &Value) -> Result<(), String> {
    match artifact.get("schema_version") {
        None => Ok(()),
        Some(v) => match v.as_u64() {
            Some(SCHEMA_VERSION) => Ok(()),
            Some(other) => Err(format!(
                "unsupported schema_version {other}: this build reads version \
                 {SCHEMA_VERSION}; regenerate the artifact with this build"
            )),
            None => Err("schema_version is not an unsigned integer".to_string()),
        },
    }
}

/// Sink for metrics and events. Implementations must be thread-safe;
/// instrumented code holds `&dyn Recorder`.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumentation may (and the
    /// span machinery does) skip all work when this is `false`.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records `value` into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Emits a structured event to the JSONL sink (if any).
    fn event(&self, name: &str, fields: &[(&str, Value)]);

    /// Records one completed span occurrence at `path` taking `nanos`.
    /// Called by [`SpanGuard`]; not usually called directly.
    fn span_observe(&self, path: &str, nanos: u64);

    /// Whether this recorder wants [`Recorder::transmission`] calls.
    /// Per-transmission capture is too hot for the metrics plane, so
    /// executors check this once per run and skip the emission entirely
    /// for recorders (the default) that don't opt in; the flight recorder
    /// ([`flight::FlightRecorder`]) does.
    fn wants_transmissions(&self) -> bool {
        false
    }

    /// Records one attempted multicast: message `msg` sent by `from` to
    /// `dests` at absolute round `round`. Only called when
    /// [`Recorder::wants_transmissions`] is `true`; the default drops it.
    fn transmission(&self, _round: usize, _msg: u32, _from: u32, _dests: &[u32]) {}
}

thread_local! {
    // Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Ergonomic helpers available on every recorder (including `dyn Recorder`).
pub trait RecorderExt {
    /// Opens a named span; the returned guard records its duration under
    /// the `/`-joined path of all open spans on this thread when dropped.
    fn span(&self, name: &str) -> SpanGuard<'_>;
}

impl<R: Recorder + AsDynRecorder + ?Sized> RecorderExt for R {
    fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self.as_dyn(), name)
    }
}

/// Object-safety shim so `RecorderExt` can hand `SpanGuard` a `&dyn`.
pub trait AsDynRecorder {
    /// `self` as a trait object.
    fn as_dyn(&self) -> &dyn Recorder;
}

impl<R: Recorder + Sized> AsDynRecorder for R {
    fn as_dyn(&self) -> &dyn Recorder {
        self
    }
}

impl AsDynRecorder for dyn Recorder + '_ {
    fn as_dyn(&self) -> &dyn Recorder {
        self
    }
}

/// RAII guard for one span occurrence. On drop, records elapsed time into
/// the recorder under the nested `/`-joined path and pops the thread's
/// span stack.
pub struct SpanGuard<'a> {
    recorder: &'a dyn Recorder,
    /// Full nested path; `None` when the recorder is disabled (inert guard).
    path: Option<String>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    fn enter(recorder: &'a dyn Recorder, name: &str) -> SpanGuard<'a> {
        if !recorder.enabled() {
            return SpanGuard {
                recorder,
                path: None,
                start: Instant::now(),
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_string());
            stack.join("/")
        });
        SpanGuard {
            recorder,
            path: Some(path),
            start: Instant::now(),
        }
    }

    /// The full `/`-joined path, or `None` on an inert guard.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            self.recorder.span_observe(&path, nanos);
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// A recorder that drops everything. `enabled()` is `false`, so span
/// guards allocate nothing and instrumented code can skip probe
/// computation entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
    fn event(&self, _name: &str, _fields: &[(&str, Value)]) {}
    fn span_observe(&self, _path: &str, _nanos: u64) {}
}

/// Raw-value histogram summarized to count/min/max/mean/p50/p90/p99.
///
/// Keeps every recorded sample, which makes it *mergeable*: combining two
/// histograms with [`Histogram::merge`] is exactly equivalent to recording
/// the concatenation of their samples into one histogram (a property test
/// pins this). That equivalence is what lets per-thread registries be
/// aggregated without draining recorders, and lets [`LiveRegistry`]
/// expositions bucket samples at scrape time against any bucket layout.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Absorbs every sample of `other`, preserving `other`'s recording
    /// order after this histogram's own samples — so `a.merge(&b)` leaves
    /// `a` indistinguishable from a histogram that recorded `a`'s samples
    /// followed by `b`'s.
    pub fn merge(&mut self, other: &Histogram) {
        self.values.extend_from_slice(&other.values);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of all recorded samples (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The recorded samples, in recording order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Nearest-rank percentile of the recorded values (`p` in 0..=100);
    /// `None` when nothing has been recorded — an empty histogram has no
    /// percentiles, and callers must not invent a 0.0 for it.
    pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
        if sorted.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Summary object. An empty histogram reports only `{"count": 0}`: the
    /// min/max/mean/percentile/total block is omitted rather than filled
    /// with fabricated zeros.
    pub fn summary(&self, scale: f64) -> Value {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = sorted.len();
        if count == 0 {
            return Value::Object(vec![("count".to_string(), Value::from_u64(0))]);
        }
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let pct = |p: f64| Self::percentile(&sorted, p).expect("nonempty") * scale;
        Value::Object(vec![
            ("count".to_string(), Value::from_u64(count as u64)),
            (
                "min".to_string(),
                Value::from_f64(sorted.first().copied().expect("nonempty") * scale),
            ),
            (
                "max".to_string(),
                Value::from_f64(sorted.last().copied().expect("nonempty") * scale),
            ),
            ("mean".to_string(), Value::from_f64(mean * scale)),
            ("p50".to_string(), Value::from_f64(pct(50.0))),
            ("p90".to_string(), Value::from_f64(pct(90.0))),
            ("p99".to_string(), Value::from_f64(pct(99.0))),
            ("total".to_string(), Value::from_f64(sum * scale)),
        ])
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Span durations in nanoseconds, keyed by nested path.
    spans: BTreeMap<String, Histogram>,
    events_emitted: u64,
}

/// The real recorder: aggregates metrics in memory (behind one mutex) and
/// optionally streams events to a JSONL sink as they happen.
pub struct MetricsRecorder {
    start: Instant,
    registry: Mutex<Registry>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// A recorder with no event sink (metrics + snapshot only).
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            start: Instant::now(),
            registry: Mutex::new(Registry::default()),
            sink: Mutex::new(None),
        }
    }

    /// A recorder streaming events to `sink`, one JSON object per line.
    pub fn with_sink(sink: Box<dyn Write + Send>) -> MetricsRecorder {
        MetricsRecorder {
            start: Instant::now(),
            registry: Mutex::new(Registry::default()),
            sink: Mutex::new(Some(sink)),
        }
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Milliseconds since the recorder was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.registry().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.registry().gauges.get(name).copied()
    }

    /// Number of events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.registry().events_emitted
    }

    /// Flushes the JSONL sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = self.sink.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
            let _ = sink.flush();
        }
    }

    /// Everything recorded so far as one JSON document:
    /// `{counters, gauges, histograms, spans, events_emitted}`.
    /// Span summaries are reported in milliseconds.
    pub fn snapshot(&self) -> Value {
        let reg = self.registry();
        let counters = Value::Object(
            reg.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::from_u64(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            reg.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::from_f64(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            reg.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary(1.0)))
                .collect(),
        );
        // Span durations are stored in ns; report ms for readability.
        let spans = Value::Object(
            reg.spans
                .iter()
                .map(|(k, h)| (k.clone(), h.summary(1e-6)))
                .collect(),
        );
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::from_u64(SCHEMA_VERSION),
            ),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("spans".to_string(), spans),
            (
                "events_emitted".to_string(),
                Value::from_u64(reg.events_emitted),
            ),
        ])
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut reg = self.registry();
        *reg.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        self.registry().gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.registry()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        {
            self.registry().events_emitted += 1;
        }
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = sink.as_mut() {
            let mut members = vec![
                ("t_ms".to_string(), Value::from_f64(self.elapsed_ms())),
                ("event".to_string(), Value::String(name.to_string())),
            ];
            members.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
            let line = serde_json::to_string(&Value::Object(members))
                .unwrap_or_else(|_| String::from("{}"));
            let _ = writeln!(sink, "{line}");
        }
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        {
            let mut reg = self.registry();
            reg.spans
                .entry(path.to_string())
                .or_default()
                .record(nanos as f64);
        }
        self.event(
            "span",
            &[
                ("path", Value::String(path.to_string())),
                ("elapsed_ns", Value::from_u64(nanos)),
            ],
        );
    }
}

/// A clonable in-memory JSONL buffer usable as a sink in tests:
/// `MetricsRecorder::with_sink(Box::new(buffer.clone()))`.
#[derive(Debug, Default, Clone)]
pub struct SharedBuffer {
    inner: std::sync::Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> SharedBuffer {
        SharedBuffer::default()
    }

    /// The buffered bytes as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.inner.lock().unwrap_or_else(|e| e.into_inner())).to_string()
    }

    /// The buffered JSONL lines, parsed.
    pub fn lines(&self) -> Vec<Value> {
        self.contents()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).expect("sink line is valid JSON"))
            .collect()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = MetricsRecorder::new();
        r.counter("msgs", 3);
        r.counter("msgs", 4);
        r.gauge("radius", 2.0);
        r.gauge("radius", 5.0);
        assert_eq!(r.counter_value("msgs"), 7);
        assert_eq!(r.gauge_value("radius"), Some(5.0));
        let snap = r.snapshot();
        assert_eq!(snap["counters"]["msgs"].as_u64(), Some(7));
        assert_eq!(snap["gauges"]["radius"].as_f64(), Some(5.0));
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let r = MetricsRecorder::new();
        for v in 1..=100 {
            r.observe("lat", v as f64);
        }
        let snap = r.snapshot();
        let h = &snap["histograms"]["lat"];
        assert_eq!(h["count"].as_u64(), Some(100));
        assert_eq!(h["min"].as_f64(), Some(1.0));
        assert_eq!(h["max"].as_f64(), Some(100.0));
        assert_eq!(h["p50"].as_f64(), Some(50.0));
        assert_eq!(h["p90"].as_f64(), Some(90.0));
        assert_eq!(h["p99"].as_f64(), Some(99.0));
        assert_eq!(h["mean"].as_f64(), Some(50.5));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        // Pin the contract: percentile of nothing is None, and the summary
        // of an empty histogram is just {"count": 0} — no fabricated zeros.
        assert_eq!(Histogram::percentile(&[], 50.0), None);
        assert_eq!(Histogram::percentile(&[], 99.0), None);
        let h = Histogram::default();
        let s = h.summary(1.0);
        assert_eq!(s["count"].as_u64(), Some(0));
        let keys: Vec<&str> = s
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["count"]);
        for absent in ["min", "max", "mean", "p50", "p90", "p99", "total"] {
            assert!(s.get(absent).is_none(), "{absent} must be omitted");
        }
    }

    #[test]
    fn schema_version_checks() {
        let versioned = Value::Object(vec![(
            "schema_version".to_string(),
            Value::from_u64(SCHEMA_VERSION),
        )]);
        assert!(check_schema_version(&versioned).is_ok());
        // Pre-versioning artifacts (no field) still load.
        assert!(check_schema_version(&Value::Object(vec![])).is_ok());
        let future = Value::Object(vec![("schema_version".to_string(), Value::from_u64(99))]);
        let err = check_schema_version(&future).unwrap_err();
        assert!(err.contains("99"), "{err}");
        assert!(err.contains(&SCHEMA_VERSION.to_string()), "{err}");
        let junk = Value::Object(vec![(
            "schema_version".to_string(),
            Value::String("x".into()),
        )]);
        assert!(check_schema_version(&junk).is_err());
        // Snapshots are stamped.
        let snap = MetricsRecorder::new().snapshot();
        assert_eq!(snap["schema_version"].as_u64(), Some(SCHEMA_VERSION));
    }

    #[test]
    fn percentile_of_single_value() {
        let r = MetricsRecorder::new();
        r.observe("one", 7.5);
        let h = &r.snapshot()["histograms"]["one"];
        for p in ["p50", "p90", "p99", "min", "max", "mean"] {
            assert_eq!(h[p].as_f64(), Some(7.5), "{p}");
        }
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let r = MetricsRecorder::new();
        {
            let outer = r.span("plan");
            assert_eq!(outer.path(), Some("plan"));
            {
                let inner = r.span("bfs");
                assert_eq!(inner.path(), Some("plan/bfs"));
            }
            let sibling = r.span("generate");
            assert_eq!(sibling.path(), Some("plan/generate"));
        }
        let snap = r.snapshot();
        assert_eq!(snap["spans"]["plan"]["count"].as_u64(), Some(1));
        assert_eq!(snap["spans"]["plan/bfs"]["count"].as_u64(), Some(1));
        assert_eq!(snap["spans"]["plan/generate"]["count"].as_u64(), Some(1));
        // An outer span strictly contains its children in wall time.
        let outer_ms = snap["spans"]["plan"]["total"].as_f64().unwrap();
        let inner_ms = snap["spans"]["plan/bfs"]["total"].as_f64().unwrap();
        assert!(outer_ms >= inner_ms);
    }

    #[test]
    fn jsonl_sink_receives_events_and_spans() {
        let buffer = SharedBuffer::new();
        let r = MetricsRecorder::with_sink(Box::new(buffer.clone()));
        r.event(
            "round",
            &[("round", Value::from_u64(1)), ("sent", Value::from_u64(4))],
        );
        {
            let _s = r.span("work");
        }
        r.flush();
        let lines = buffer.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0]["event"].as_str(), Some("round"));
        assert_eq!(lines[0]["sent"].as_u64(), Some(4));
        assert_eq!(lines[1]["event"].as_str(), Some("span"));
        assert_eq!(lines[1]["path"].as_str(), Some("work"));
        assert!(lines[1]["elapsed_ns"].as_u64().is_some());
        assert_eq!(r.events_emitted(), 2);
    }

    #[test]
    fn noop_recorder_produces_nothing_and_inert_spans() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.counter("x", 1);
        r.gauge("y", 2.0);
        r.observe("z", 3.0);
        r.event("e", &[]);
        {
            let guard = r.span("quiet");
            assert_eq!(guard.path(), None);
        }
        // The span stack must stay empty so later enabled recorders see
        // clean nesting.
        let real = MetricsRecorder::new();
        let g = real.span("top");
        assert_eq!(g.path(), Some("top"));
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = std::sync::Arc::new(MetricsRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.counter("hits", 1);
                    }
                    r.observe("per_thread", 1.0);
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 4000);
        assert_eq!(
            r.snapshot()["histograms"]["per_thread"]["count"].as_u64(),
            Some(4)
        );
    }
}
