//! [`LiveRegistry`]: the scrape-friendly recorder behind live runtime
//! observability (`gossip serve`).
//!
//! [`crate::MetricsRecorder`] aggregates behind one mutex and buffers its
//! event stream for a post-run artifact; that is the wrong shape for a
//! registry an HTTP server reads *while* executor threads write. This
//! registry keeps:
//!
//! - counters and gauges as individual `AtomicU64` cells (gauges store the
//!   `f64` bit pattern), found through a name map behind an `RwLock` that
//!   is only write-locked the first time a name appears — steady-state
//!   updates are a read-lock plus one atomic RMW, and scrapes never block
//!   writers on anything coarser than a per-histogram mutex;
//! - histograms and span timings as [`Histogram`]s behind per-entry
//!   mutexes, mergeable across registries via [`Histogram::merge`];
//! - events as a monotone sequence counter plus an optional *tap*: when no
//!   tap is installed (no `/events` subscriber has ever connected) an
//!   event costs one atomic increment and no rendering; a tap receives
//!   each event pre-rendered as one NDJSON line.
//!
//! The registry is exposed over HTTP by `gossip-obsd`, which renders it in
//! Prometheus text exposition format; [`LiveRegistry::snapshot`] produces
//! the same JSON document shape as [`crate::MetricsRecorder::snapshot`].

use crate::{Histogram, Recorder, Value, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Callback invoked with `(seq, ndjson_line)` for every event once
/// installed via [`LiveRegistry::set_event_tap`].
pub type EventTap = Arc<dyn Fn(u64, &str) + Send + Sync>;

/// Returns the cell for `name`, creating it under the write lock only on
/// first use; every later access is a shared read lock plus a clone of the
/// `Arc`.
fn slot<V: Clone>(map: &RwLock<BTreeMap<String, V>>, name: &str, make: impl FnOnce() -> V) -> V {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return v.clone();
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    w.entry(name.to_string()).or_insert_with(make).clone()
}

fn read_map<V: Clone>(map: &RwLock<BTreeMap<String, V>>) -> BTreeMap<String, V> {
    map.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Lock-cheap live metrics registry (see the module docs).
pub struct LiveRegistry {
    start: Instant,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    /// Span durations in nanoseconds, keyed by nested path.
    spans: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    events_emitted: AtomicU64,
    tap: RwLock<Option<EventTap>>,
}

impl Default for LiveRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveRegistry {
    /// An empty registry with no event tap.
    pub fn new() -> LiveRegistry {
        LiveRegistry {
            start: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            events_emitted: AtomicU64::new(0),
            tap: RwLock::new(None),
        }
    }

    /// Milliseconds since the registry was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Installs the event tap: from now on every [`Recorder::event`] is
    /// rendered to one NDJSON line and handed to `tap`. Replaces any
    /// previous tap.
    pub fn set_event_tap(&self, tap: EventTap) {
        *self.tap.write().unwrap_or_else(|e| e.into_inner()) = Some(tap);
    }

    /// Removes the event tap; events go back to costing one atomic add.
    pub fn clear_event_tap(&self) {
        *self.tap.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// A point-in-time copy of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|h| h.lock().unwrap_or_else(|e| e.into_inner()).clone())
    }

    /// Number of events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted.load(Ordering::Relaxed)
    }

    /// All counters, name-sorted, as of now.
    pub fn counters(&self) -> Vec<(String, u64)> {
        read_map(&self.counters)
            .into_iter()
            .map(|(k, v)| (k, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All gauges, name-sorted, as of now.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        read_map(&self.gauges)
            .into_iter()
            .map(|(k, v)| (k, f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    /// Point-in-time copies of all histograms, name-sorted.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        read_map(&self.histograms)
            .into_iter()
            .map(|(k, v)| (k, v.lock().unwrap_or_else(|e| e.into_inner()).clone()))
            .collect()
    }

    /// Point-in-time copies of all span-duration histograms (nanoseconds),
    /// keyed by nested span path, name-sorted.
    pub fn spans(&self) -> Vec<(String, Histogram)> {
        read_map(&self.spans)
            .into_iter()
            .map(|(k, v)| (k, v.lock().unwrap_or_else(|e| e.into_inner()).clone()))
            .collect()
    }

    /// Absorbs `other` into this registry: counters add, gauges take
    /// `other`'s value where it set one (last write wins, matching the
    /// gauge contract), histograms and span timings merge sample-for-sample
    /// via [`Histogram::merge`], and event counts add. This is how
    /// per-thread or per-epoch registries aggregate without draining any
    /// recorder mid-run.
    pub fn merge(&self, other: &LiveRegistry) {
        for (name, v) in other.counters() {
            self.counter(&name, v);
        }
        for (name, v) in other.gauges() {
            self.gauge(&name, v);
        }
        for (name, h) in other.histograms() {
            let cell = slot(&self.histograms, &name, || {
                Arc::new(Mutex::new(Histogram::new()))
            });
            cell.lock().unwrap_or_else(|e| e.into_inner()).merge(&h);
        }
        for (name, h) in other.spans() {
            let cell = slot(&self.spans, &name, || {
                Arc::new(Mutex::new(Histogram::new()))
            });
            cell.lock().unwrap_or_else(|e| e.into_inner()).merge(&h);
        }
        self.events_emitted
            .fetch_add(other.events_emitted(), Ordering::Relaxed);
    }

    /// Everything recorded so far as one JSON document, the same shape as
    /// [`crate::MetricsRecorder::snapshot`]:
    /// `{schema_version, counters, gauges, histograms, spans,
    /// events_emitted}` with span summaries in milliseconds.
    pub fn snapshot(&self) -> Value {
        let counters = Value::Object(
            self.counters()
                .into_iter()
                .map(|(k, v)| (k, Value::from_u64(v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges()
                .into_iter()
                .map(|(k, v)| (k, Value::from_f64(v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms()
                .into_iter()
                .map(|(k, h)| (k, h.summary(1.0)))
                .collect(),
        );
        let spans = Value::Object(
            self.spans()
                .into_iter()
                .map(|(k, h)| (k, h.summary(1e-6)))
                .collect(),
        );
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::from_u64(SCHEMA_VERSION),
            ),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("spans".to_string(), spans),
            (
                "events_emitted".to_string(),
                Value::from_u64(self.events_emitted()),
            ),
        ])
    }
}

impl Recorder for LiveRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str, delta: u64) {
        let cell = slot(&self.counters, name, || Arc::new(AtomicU64::new(0)));
        cell.fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, name: &str, value: f64) {
        let cell = slot(&self.gauges, name, || Arc::new(AtomicU64::new(0)));
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, name: &str, value: f64) {
        let cell = slot(&self.histograms, name, || {
            Arc::new(Mutex::new(Histogram::new()))
        });
        cell.lock().unwrap_or_else(|e| e.into_inner()).record(value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let seq = self.events_emitted.fetch_add(1, Ordering::Relaxed) + 1;
        // Render only when a subscriber is listening: the tap read lock is
        // uncontended in steady state and `None` short-circuits all work.
        let tap = self
            .tap
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(Arc::clone);
        if let Some(tap) = tap {
            let mut members = vec![
                ("seq".to_string(), Value::from_u64(seq)),
                ("t_ms".to_string(), Value::from_f64(self.elapsed_ms())),
                ("event".to_string(), Value::String(name.to_string())),
            ];
            members.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
            let line = serde_json::to_string(&Value::Object(members))
                .unwrap_or_else(|_| String::from("{}"));
            tap(seq, &line);
        }
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        let cell = slot(&self.spans, path, || Arc::new(Mutex::new(Histogram::new())));
        cell.lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(nanos as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecorderExt;

    #[test]
    fn counters_gauges_histograms_record() {
        let r = LiveRegistry::new();
        r.counter("sends", 2);
        r.counter("sends", 3);
        r.gauge("round_current", 7.0);
        r.gauge("round_current", 9.0);
        r.observe("fanout", 2.0);
        r.observe("fanout", 4.0);
        assert_eq!(r.counter_value("sends"), 5);
        assert_eq!(r.gauge_value("round_current"), Some(9.0));
        assert_eq!(r.gauge_value("absent"), None);
        let h = r.histogram("fanout").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 6.0);
        let snap = r.snapshot();
        assert_eq!(snap["counters"]["sends"].as_u64(), Some(5));
        assert_eq!(snap["gauges"]["round_current"].as_f64(), Some(9.0));
        assert_eq!(snap["histograms"]["fanout"]["count"].as_u64(), Some(2));
    }

    #[test]
    fn events_count_without_tap_and_render_with_tap() {
        let r = LiveRegistry::new();
        r.event("round_end", &[("round", Value::from_u64(3))]);
        assert_eq!(r.events_emitted(), 1);
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        r.set_event_tap(Arc::new(move |_seq, line| {
            sink.lock().unwrap().push(line.to_string());
        }));
        r.event("round_end", &[("round", Value::from_u64(4))]);
        r.clear_event_tap();
        r.event("round_end", &[("round", Value::from_u64(5))]);
        assert_eq!(r.events_emitted(), 3);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1, "only the tapped event renders");
        let v: Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(v["event"].as_str(), Some("round_end"));
        assert_eq!(v["round"].as_u64(), Some(4));
        assert_eq!(v["seq"].as_u64(), Some(2));
    }

    #[test]
    fn spans_record_into_span_histograms() {
        let r = LiveRegistry::new();
        {
            let _outer = r.span("serve");
            let _inner = r.span("epoch");
        }
        let spans = r.spans();
        let paths: Vec<&str> = spans.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(paths, vec!["serve", "serve/epoch"]);
        assert!(spans.iter().all(|(_, h)| h.count() == 1));
        let snap = r.snapshot();
        assert_eq!(snap["spans"]["serve"]["count"].as_u64(), Some(1));
    }

    #[test]
    fn merge_aggregates_two_registries() {
        let a = LiveRegistry::new();
        let b = LiveRegistry::new();
        a.counter("sends", 2);
        b.counter("sends", 5);
        b.counter("losses", 1);
        a.gauge("round_current", 3.0);
        b.gauge("round_current", 8.0);
        a.observe("fanout", 1.0);
        b.observe("fanout", 2.0);
        b.observe("fanout", 3.0);
        b.event("e", &[]);
        a.merge(&b);
        assert_eq!(a.counter_value("sends"), 7);
        assert_eq!(a.counter_value("losses"), 1);
        assert_eq!(a.gauge_value("round_current"), Some(8.0));
        assert_eq!(a.histogram("fanout").unwrap().values(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.events_emitted(), 1);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let r = Arc::new(LiveRegistry::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for j in 0..1000 {
                        r.counter("hits", 1);
                        r.gauge(&format!("g{i}"), j as f64);
                        r.observe("lat", j as f64);
                        r.event("tick", &[]);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 4000);
        assert_eq!(r.histogram("lat").unwrap().count(), 4000);
        assert_eq!(r.events_emitted(), 4000);
        for i in 0..4 {
            assert_eq!(r.gauge_value(&format!("g{i}")), Some(999.0));
        }
    }
}
