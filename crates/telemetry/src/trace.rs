//! Chrome Trace Event Format sink.
//!
//! Builds trace files loadable by `chrome://tracing`, Perfetto
//! (<https://ui.perfetto.dev>), and speedscope: a JSON **array of event
//! objects**, each with the `ph` (phase), `ts` (microsecond timestamp),
//! `pid`, and `tid` fields of the published format. Two event phases cover
//! everything this workspace needs:
//!
//! - `"X"` *complete* events (a named interval with `dur`) — one per
//!   multicast in a schedule lane or per executor-thread round;
//! - `"i"` *instant* events — message arrivals;
//! - `"M"` *metadata* events — process/thread names, so processor lanes
//!   are labeled `P3` instead of `tid 3`.
//!
//! Timestamps are `f64` microseconds. Simulated schedules map one logical
//! round to [`ChromeTrace::ROUND_US`] so rounds are readable at default
//! zoom; wall-clock traces (the threaded online executor) pass real
//! elapsed microseconds.

use crate::Value;

/// Microseconds per logical round in schedule-time traces: 1 round = 1 ms.
const ROUND_US: f64 = 1000.0;

/// One Chrome trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Comma-separated categories (filterable in the viewer).
    pub cat: String,
    /// Phase: `X` complete, `i` instant, `M` metadata.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: Option<f64>,
    /// Process id (lane group).
    pub pid: u64,
    /// Thread id (lane).
    pub tid: u64,
    /// Extra `args` shown in the selection panel.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    fn to_value(&self) -> Value {
        let mut members = vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("cat".to_string(), Value::String(self.cat.clone())),
            ("ph".to_string(), Value::String(self.ph.to_string())),
            ("ts".to_string(), Value::from_f64(self.ts_us)),
            ("pid".to_string(), Value::from_u64(self.pid)),
            ("tid".to_string(), Value::from_u64(self.tid)),
        ];
        if let Some(d) = self.dur_us {
            members.push(("dur".to_string(), Value::from_f64(d)));
        }
        if self.ph == 'i' {
            // Instant scope: thread-scoped, so the tick renders in-lane.
            members.push(("s".to_string(), Value::String("t".to_string())));
        }
        if !self.args.is_empty() {
            members.push(("args".to_string(), Value::Object(self.args.clone())));
        }
        Value::Object(members)
    }
}

/// An in-memory trace under construction.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// Microseconds per logical round in schedule-time traces.
    pub const ROUND_US: f64 = ROUND_US;

    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process lane group (`"M"` metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid: 0,
            args: vec![("name".to_string(), Value::String(name.to_string()))],
        });
    }

    /// Names a thread lane (`"M"` metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            args: vec![("name".to_string(), Value::String(name.to_string()))],
        });
    }

    /// Adds a `"X"` complete event: a named interval on lane `(pid, tid)`.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args,
        });
    }

    /// Adds an `"i"` instant event on lane `(pid, tid)`.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us,
            dur_us: None,
            pid,
            tid,
            args,
        });
    }

    /// Appends all of `other`'s events, so independent traces (e.g. a
    /// logical-round schedule lane and a wall-clock executor lane, under
    /// different `pid`s) combine into one file.
    pub fn extend(&mut self, other: ChromeTrace) {
        self.events.extend(other.events);
    }

    /// The trace as the format's JSON array of event objects.
    pub fn to_value(&self) -> Value {
        Value::Array(self.events.iter().map(TraceEvent::to_value).collect())
    }

    /// The trace rendered as JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).unwrap_or_else(|_| "[]".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_required_fields() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "schedule");
        t.thread_name(0, 3, "P3");
        t.complete(
            "m5",
            "send",
            0,
            3,
            2000.0,
            1000.0,
            vec![("msg".to_string(), Value::from_u64(5))],
        );
        t.instant("recv m5", "recv", 0, 4, 3000.0, vec![]);
        let v = t.to_value();
        let events = v.as_array().expect("array of events");
        assert_eq!(events.len(), 4);
        for e in events {
            for field in ["ph", "ts", "pid", "tid", "name"] {
                assert!(e.get(field).is_some(), "missing {field} in {e:?}");
            }
        }
        assert_eq!(events[2]["ph"].as_str(), Some("X"));
        assert_eq!(events[2]["dur"].as_f64(), Some(1000.0));
        assert_eq!(events[2]["args"]["msg"].as_u64(), Some(5));
        assert_eq!(events[3]["ph"].as_str(), Some("i"));
        assert_eq!(events[3]["s"].as_str(), Some("t"));
    }

    #[test]
    fn json_round_trips_as_array() {
        let mut t = ChromeTrace::new();
        t.complete("a", "c", 0, 1, 0.0, 10.0, vec![]);
        let parsed: Value = serde_json::from_str(&t.to_json()).expect("valid JSON");
        assert_eq!(parsed.as_array().map(Vec::len), Some(1));
    }
}
