//! Flight recorder: a compact binary capture of everything a run did.
//!
//! The live observability plane (metrics, `/events`, dashboards) shows a
//! run *while* it happens; nothing so far retains a complete, cheap,
//! replayable record of what the run actually did. This module is that
//! record: a `.gfr` ("gossip flight record") artifact — a schema-versioned
//! binary header (run fingerprint: graph/schedule/fault digests, origins,
//! engine label) followed by varint-encoded records for every
//! transmission, suppressed delivery, round boundary, and repair epoch.
//!
//! Three pieces:
//!
//! - [`FlightRecorder`] implements [`Recorder`] and encodes as events
//!   arrive. It opts into per-transmission capture via
//!   [`Recorder::wants_transmissions`], so executors that normally skip
//!   per-delivery detail emit it only when a flight recorder is listening.
//!   An optional ring-buffer capacity bounds memory on unbounded runs by
//!   evicting the oldest records (the eviction count is written into the
//!   trailing `End` record, so a truncated capture says so).
//! - [`FlightLog`] decodes a `.gfr` byte stream losslessly — re-encoding a
//!   decoded log reproduces the input byte for byte (golden-tested), which
//!   is what makes the format safe to archive.
//! - [`Tee`] fans one event stream out to two recorders, so a flight
//!   recorder can ride along with a metrics registry or live registry
//!   without touching any executor signature.
//!
//! Record encoding is LEB128 varints behind one tag byte per record;
//! transmissions and losses carry their round explicitly, so decoding does
//! not depend on emission order (the threaded online executor interleaves
//! sends from many threads). Post-mortem analysis — time-travel hold-set
//! reconstruction, cross-run diffing, anomaly flagging — lives in
//! `gossip-obsd`, on top of [`FlightLog`].

use crate::{Recorder, Value};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Leading magic of every `.gfr` artifact.
pub const FLIGHT_MAGIC: [u8; 4] = *b"GFR1";

/// Version of the `.gfr` record layout (independent of the JSON
/// [`crate::SCHEMA_VERSION`]; bumped when the binary format changes).
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

const TAG_TX: u8 = 1;
const TAG_LOSS: u8 = 2;
const TAG_ROUND_END: u8 = 3;
const TAG_EPOCH_START: u8 = 4;
const TAG_EPOCH_END: u8 = 5;
const TAG_END: u8 = 6;
const TAG_CHURN: u8 = 7;
const TAG_ALERT: u8 = 8;

/// Loss-cause codes stored in [`FlightRecord::Loss`]; stable across
/// builds because they are part of the on-disk format (append-only).
pub const CAUSE_LABELS: [&str; 6] = [
    "sampled",
    "link_down",
    "sender_crashed",
    "receiver_crashed",
    "not_held",
    "churn_invalidated",
];

/// The code for a loss-cause label (255 for labels this build does not
/// know, so future causes degrade to "unknown" instead of erroring).
pub fn cause_code(label: &str) -> u8 {
    CAUSE_LABELS
        .iter()
        .position(|&l| l == label)
        .map(|i| i as u8)
        .unwrap_or(255)
}

/// The label for a loss-cause code (the inverse of [`cause_code`]).
pub fn cause_label(code: u8) -> &'static str {
    CAUSE_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// Topology-change op codes stored in [`FlightRecord::Churn`]; stable
/// across builds because they are part of the on-disk format
/// (append-only). Mirrors `gossip_model::ChurnOp::label` without a
/// dependency on the model crate.
pub const CHURN_OP_LABELS: [&str; 5] = [
    "edge_add",
    "edge_remove",
    "node_leave",
    "node_join",
    "link_flap",
];

/// The code for a churn-op label (255 for labels this build does not
/// know, so future ops degrade to "unknown" instead of erroring).
pub fn churn_op_code(label: &str) -> u8 {
    CHURN_OP_LABELS
        .iter()
        .position(|&l| l == label)
        .map(|i| i as u8)
        .unwrap_or(255)
}

/// The label for a churn-op code (the inverse of [`churn_op_code`]).
pub fn churn_op_label(code: u8) -> &'static str {
    CHURN_OP_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// Watchdog rule codes stored in [`FlightRecord::Alert`]; stable across
/// builds because they are part of the on-disk format (append-only).
/// Mirrors `gossip_telemetry::watch`'s rule names without coupling the
/// binary format to the rule structs.
pub const ALERT_RULE_LABELS: [&str; 6] = [
    "stall",
    "flatline",
    "bound",
    "loss_spike",
    "epoch_budget",
    "churn_storm",
];

/// The code for an alert-rule label (255 for labels this build does not
/// know, so future rules degrade to "unknown" instead of erroring).
pub fn alert_rule_code(label: &str) -> u8 {
    ALERT_RULE_LABELS
        .iter()
        .position(|&l| l == label)
        .map(|i| i as u8)
        .unwrap_or(255)
}

/// The label for an alert-rule code (the inverse of [`alert_rule_code`]).
pub fn alert_rule_label(code: u8) -> &'static str {
    ALERT_RULE_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// Alert severity codes stored in [`FlightRecord::Alert`]; stable across
/// builds because they are part of the on-disk format (append-only).
pub const ALERT_SEVERITY_LABELS: [&str; 3] = ["info", "warn", "critical"];

/// The code for a severity label (255 for labels this build does not
/// know).
pub fn alert_severity_code(label: &str) -> u8 {
    ALERT_SEVERITY_LABELS
        .iter()
        .position(|&l| l == label)
        .map(|i| i as u8)
        .unwrap_or(255)
}

/// The label for a severity code (the inverse of [`alert_severity_code`]).
pub fn alert_severity_label(code: u8) -> &'static str {
    ALERT_SEVERITY_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, String> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = self
                .bytes
                .get(self.pos)
                .ok_or_else(|| format!("truncated varint at byte {}", self.pos))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(format!("varint overflow at byte {}", self.pos));
            }
            x |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    fn u32_varint(&mut self, what: &str) -> Result<u32, String> {
        let x = self.varint()?;
        u32::try_from(x).map_err(|_| format!("{what} {x} exceeds u32"))
    }

    fn u64_le(&mut self) -> Result<u64, String> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated u64 at byte {}", self.pos))?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    fn byte(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }
}

/// A streaming FNV-1a 64 hasher for run fingerprints: graph, schedule, and
/// fault-plan digests stamped into the flight header so `gossip diff` can
/// tell whether two captures even describe the same run inputs.
/// Deterministic, dependency-free, and stable across builds (the digests
/// are part of the on-disk format).
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs one `u64` (little-endian byte order).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The run fingerprint written at the front of every `.gfr` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightHeader {
    /// Processor count.
    pub n: u32,
    /// Message count (usually `n`).
    pub n_msgs: u32,
    /// Graph radius `r`, so post-mortem analysis can check the paper's
    /// `n + r` bound without the graph at hand.
    pub radius: u32,
    /// Which engine produced the capture (`oracle`, `kernel`, `lossy`,
    /// `resilient`, `online`, ...). Free-form; informational only.
    pub engine: String,
    /// Digest of the network the run executed on.
    pub graph_digest: u64,
    /// Digest of the schedule the run replayed.
    pub schedule_digest: u64,
    /// Digest of the fault plan, or 0 for a clean run.
    pub fault_digest: u64,
    /// `origins[m]` is the processor where message `m` originated — the
    /// initial hold sets, from which replay reconstructs every later one.
    pub origins: Vec<u32>,
}

impl FlightHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&FLIGHT_MAGIC);
        push_varint(out, FLIGHT_SCHEMA_VERSION);
        push_varint(out, u64::from(self.n));
        push_varint(out, u64::from(self.n_msgs));
        push_varint(out, u64::from(self.radius));
        push_varint(out, self.engine.len() as u64);
        out.extend_from_slice(self.engine.as_bytes());
        out.extend_from_slice(&self.graph_digest.to_le_bytes());
        out.extend_from_slice(&self.schedule_digest.to_le_bytes());
        out.extend_from_slice(&self.fault_digest.to_le_bytes());
        push_varint(out, self.origins.len() as u64);
        for &o in &self.origins {
            push_varint(out, u64::from(o));
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<FlightHeader, String> {
        let magic = r
            .bytes
            .get(..4)
            .ok_or_else(|| "not a flight record: shorter than the magic".to_string())?;
        if magic != FLIGHT_MAGIC {
            return Err("not a flight record: bad magic (expected GFR1)".to_string());
        }
        r.pos = 4;
        let schema = r.varint()?;
        if schema != FLIGHT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported flight schema {schema}: this build reads version \
                 {FLIGHT_SCHEMA_VERSION}; regenerate the capture with this build"
            ));
        }
        let n = r.u32_varint("n")?;
        let n_msgs = r.u32_varint("n_msgs")?;
        let radius = r.u32_varint("radius")?;
        let engine_len = r.varint()? as usize;
        let engine_bytes = r
            .bytes
            .get(r.pos..r.pos + engine_len)
            .ok_or_else(|| "truncated engine label".to_string())?;
        r.pos += engine_len;
        let engine = std::str::from_utf8(engine_bytes)
            .map_err(|_| "engine label is not UTF-8".to_string())?
            .to_string();
        let graph_digest = r.u64_le()?;
        let schedule_digest = r.u64_le()?;
        let fault_digest = r.u64_le()?;
        let n_origins = r.varint()? as usize;
        let mut origins = Vec::with_capacity(n_origins.min(1 << 20));
        for _ in 0..n_origins {
            origins.push(r.u32_varint("origin")?);
        }
        Ok(FlightHeader {
            n,
            n_msgs,
            radius,
            engine,
            graph_digest,
            schedule_digest,
            fault_digest,
            origins,
        })
    }
}

/// One decoded flight record, in capture order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightRecord {
    /// One attempted multicast: message `msg` from `from` to `dests` at
    /// `round`. Under faults the attempt is recorded even when every
    /// delivery was suppressed (the matching [`FlightRecord::Loss`]
    /// records say which ones), so a lossy capture still shows what the
    /// schedule *tried*.
    Tx {
        /// Absolute round of the attempt.
        round: u32,
        /// Message id.
        msg: u32,
        /// Sending processor.
        from: u32,
        /// Destination processors.
        dests: Vec<u32>,
    },
    /// One suppressed delivery and its cause code (see [`cause_label`]).
    Loss {
        /// Absolute round of the suppression.
        round: u32,
        /// Message id.
        msg: u32,
        /// Sending processor.
        from: u32,
        /// The destination that did not receive.
        to: u32,
        /// Cause code (see [`cause_code`] / [`cause_label`]).
        cause: u8,
    },
    /// A completed round and the known-pair count after it — the
    /// knowledge curve, and an integrity check for replay.
    RoundEnd {
        /// Absolute round that completed.
        round: u32,
        /// (processor, message) pairs known after the round.
        known_pairs: u64,
    },
    /// A repair epoch began (`ResilientExecutor` only).
    EpochStart {
        /// Epoch index (0 = the base schedule).
        epoch: u32,
        /// Absolute round the epoch starts at.
        start_round: u32,
    },
    /// A repair epoch finished.
    EpochEnd {
        /// Epoch index.
        epoch: u32,
    },
    /// One applied topology change (`ChurnExecutor` only).
    Churn {
        /// Absolute round the change fired at.
        round: u32,
        /// Op code (see [`churn_op_code`] / [`churn_op_label`]).
        op: u8,
        /// First endpoint (the departing/joining node for node events).
        u: u32,
        /// Second endpoint (equal to `u` for node events).
        v: u32,
    },
    /// A watchdog rule fired (`gossip_telemetry::watch::AlertEngine`):
    /// the alert timeline against the round axis. The observed value and
    /// threshold are stored as `f64` bit patterns so re-encoding is exact.
    Alert {
        /// The last completed round when the rule fired.
        round: u32,
        /// Rule code (see [`alert_rule_code`] / [`alert_rule_label`]).
        rule: u8,
        /// Severity code (see [`alert_severity_code`]).
        severity: u8,
        /// `f64::to_bits` of the observed value.
        value_bits: u64,
        /// `f64::to_bits` of the configured threshold.
        threshold_bits: u64,
    },
}

fn encode_record(out: &mut Vec<u8>, rec: &FlightRecord) {
    match rec {
        FlightRecord::Tx {
            round,
            msg,
            from,
            dests,
        } => {
            out.push(TAG_TX);
            push_varint(out, u64::from(*round));
            push_varint(out, u64::from(*msg));
            push_varint(out, u64::from(*from));
            push_varint(out, dests.len() as u64);
            for &d in dests {
                push_varint(out, u64::from(d));
            }
        }
        FlightRecord::Loss {
            round,
            msg,
            from,
            to,
            cause,
        } => {
            out.push(TAG_LOSS);
            push_varint(out, u64::from(*round));
            push_varint(out, u64::from(*msg));
            push_varint(out, u64::from(*from));
            push_varint(out, u64::from(*to));
            push_varint(out, u64::from(*cause));
        }
        FlightRecord::RoundEnd { round, known_pairs } => {
            out.push(TAG_ROUND_END);
            push_varint(out, u64::from(*round));
            push_varint(out, *known_pairs);
        }
        FlightRecord::EpochStart { epoch, start_round } => {
            out.push(TAG_EPOCH_START);
            push_varint(out, u64::from(*epoch));
            push_varint(out, u64::from(*start_round));
        }
        FlightRecord::EpochEnd { epoch } => {
            out.push(TAG_EPOCH_END);
            push_varint(out, u64::from(*epoch));
        }
        FlightRecord::Churn { round, op, u, v } => {
            out.push(TAG_CHURN);
            push_varint(out, u64::from(*round));
            push_varint(out, u64::from(*op));
            push_varint(out, u64::from(*u));
            push_varint(out, u64::from(*v));
        }
        FlightRecord::Alert {
            round,
            rule,
            severity,
            value_bits,
            threshold_bits,
        } => {
            out.push(TAG_ALERT);
            push_varint(out, u64::from(*round));
            push_varint(out, u64::from(*rule));
            push_varint(out, u64::from(*severity));
            // Fixed-width: arbitrary f64 bit patterns varint badly.
            out.extend_from_slice(&value_bits.to_le_bytes());
            out.extend_from_slice(&threshold_bits.to_le_bytes());
        }
    }
}

/// A borrowed view of one transmission record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightTx<'a> {
    /// Absolute round.
    pub round: u32,
    /// Message id.
    pub msg: u32,
    /// Sender.
    pub from: u32,
    /// Destinations.
    pub dests: &'a [u32],
}

/// One applied topology change, as a plain value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightChurn {
    /// Absolute round.
    pub round: u32,
    /// Op code (see [`churn_op_label`]).
    pub op: u8,
    /// First endpoint.
    pub u: u32,
    /// Second endpoint (equal to `u` for node events).
    pub v: u32,
}

/// One fired watchdog alert, as a plain value (bit patterns decoded back
/// to `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightAlert {
    /// The last completed round when the rule fired.
    pub round: u32,
    /// Rule code (see [`alert_rule_label`]).
    pub rule: u8,
    /// Severity code (see [`alert_severity_label`]).
    pub severity: u8,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// The configured threshold it tripped against.
    pub threshold: f64,
}

/// One suppressed delivery, as a plain value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightLoss {
    /// Absolute round.
    pub round: u32,
    /// Message id.
    pub msg: u32,
    /// Sender.
    pub from: u32,
    /// The destination that did not receive.
    pub to: u32,
    /// Cause code (see [`cause_label`]).
    pub cause: u8,
}

/// A fully decoded `.gfr` capture. Records keep their capture order, so
/// [`FlightLog::encode`] reproduces the original bytes exactly; accessors
/// normalize ordering where analysis needs it (the threaded online
/// executor emits transmissions in scheduling-race order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLog {
    /// The run fingerprint.
    pub header: FlightHeader,
    /// Every record, in capture order.
    pub records: Vec<FlightRecord>,
    /// Records evicted by the ring buffer before the capture ended
    /// (0 = the capture is complete).
    pub dropped: u64,
}

impl FlightLog {
    /// Whether `bytes` look like a `.gfr` artifact (magic check only).
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.get(..4) == Some(&FLIGHT_MAGIC)
    }

    /// Decodes a capture, validating the magic, schema version, and every
    /// record tag. Lossless: `decode(bytes).encode() == bytes`.
    pub fn decode(bytes: &[u8]) -> Result<FlightLog, String> {
        let mut r = Reader { bytes, pos: 0 };
        let header = FlightHeader::decode(&mut r)?;
        let mut records = Vec::new();
        let mut dropped = None;
        while let Some(tag) = r.byte() {
            match tag {
                TAG_TX => {
                    let round = r.u32_varint("round")?;
                    let msg = r.u32_varint("msg")?;
                    let from = r.u32_varint("from")?;
                    let ndests = r.varint()? as usize;
                    let mut dests = Vec::with_capacity(ndests.min(1 << 20));
                    for _ in 0..ndests {
                        dests.push(r.u32_varint("dest")?);
                    }
                    records.push(FlightRecord::Tx {
                        round,
                        msg,
                        from,
                        dests,
                    });
                }
                TAG_LOSS => records.push(FlightRecord::Loss {
                    round: r.u32_varint("round")?,
                    msg: r.u32_varint("msg")?,
                    from: r.u32_varint("from")?,
                    to: r.u32_varint("to")?,
                    cause: r.varint()?.min(255) as u8,
                }),
                TAG_ROUND_END => records.push(FlightRecord::RoundEnd {
                    round: r.u32_varint("round")?,
                    known_pairs: r.varint()?,
                }),
                TAG_EPOCH_START => records.push(FlightRecord::EpochStart {
                    epoch: r.u32_varint("epoch")?,
                    start_round: r.u32_varint("start_round")?,
                }),
                TAG_EPOCH_END => records.push(FlightRecord::EpochEnd {
                    epoch: r.u32_varint("epoch")?,
                }),
                TAG_CHURN => records.push(FlightRecord::Churn {
                    round: r.u32_varint("round")?,
                    op: r.varint()?.min(255) as u8,
                    u: r.u32_varint("u")?,
                    v: r.u32_varint("v")?,
                }),
                TAG_ALERT => records.push(FlightRecord::Alert {
                    round: r.u32_varint("round")?,
                    rule: r.varint()?.min(255) as u8,
                    severity: r.varint()?.min(255) as u8,
                    value_bits: r.u64_le()?,
                    threshold_bits: r.u64_le()?,
                }),
                TAG_END => {
                    dropped = Some(r.varint()?);
                    break;
                }
                other => return Err(format!("unknown record tag {other} at byte {}", r.pos - 1)),
            }
        }
        let dropped = dropped.ok_or_else(|| "truncated capture: missing End record".to_string())?;
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing byte(s) after the End record",
                bytes.len() - r.pos
            ));
        }
        Ok(FlightLog {
            header,
            records,
            dropped,
        })
    }

    /// Re-encodes the capture; byte-identical to what the recorder wrote.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.header.encode_into(&mut out);
        for rec in &self.records {
            encode_record(&mut out, rec);
        }
        out.push(TAG_END);
        push_varint(&mut out, self.dropped);
        out
    }

    /// Rounds covered by the capture (max record round + 1).
    pub fn rounds(&self) -> usize {
        self.records
            .iter()
            .map(|rec| match rec {
                FlightRecord::Tx { round, .. }
                | FlightRecord::Loss { round, .. }
                | FlightRecord::RoundEnd { round, .. } => *round as usize + 1,
                FlightRecord::EpochStart { start_round, .. } => *start_round as usize,
                FlightRecord::Churn { round, .. } | FlightRecord::Alert { round, .. } => {
                    *round as usize
                }
                FlightRecord::EpochEnd { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Every transmission, normalized to `(round, from, msg)` order so
    /// captures of the same run from different engines (or the threaded
    /// online executor) compare equal.
    pub fn txs(&self) -> Vec<FlightTx<'_>> {
        let mut out: Vec<FlightTx<'_>> = self
            .records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::Tx {
                    round,
                    msg,
                    from,
                    dests,
                } => Some(FlightTx {
                    round: *round,
                    msg: *msg,
                    from: *from,
                    dests,
                }),
                _ => None,
            })
            .collect();
        out.sort_by_key(|t| (t.round, t.from, t.msg));
        out
    }

    /// Every suppressed delivery, normalized to `(round, from, to)` order.
    pub fn losses(&self) -> Vec<FlightLoss> {
        let mut out: Vec<FlightLoss> = self
            .records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::Loss {
                    round,
                    msg,
                    from,
                    to,
                    cause,
                } => Some(FlightLoss {
                    round: *round,
                    msg: *msg,
                    from: *from,
                    to: *to,
                    cause: *cause,
                }),
                _ => None,
            })
            .collect();
        out.sort_by_key(|l| (l.round, l.from, l.to));
        out
    }

    /// The `(round, known_pairs)` knowledge curve, in capture order.
    pub fn known_pairs_curve(&self) -> Vec<(u32, u64)> {
        self.records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::RoundEnd { round, known_pairs } => Some((*round, *known_pairs)),
                _ => None,
            })
            .collect()
    }

    /// `(epoch, start_round)` of every recorded repair epoch.
    pub fn epochs(&self) -> Vec<(u32, u32)> {
        self.records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::EpochStart { epoch, start_round } => Some((*epoch, *start_round)),
                _ => None,
            })
            .collect()
    }

    /// Every fired watchdog alert, in capture (= firing) order.
    pub fn alerts(&self) -> Vec<FlightAlert> {
        self.records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::Alert {
                    round,
                    rule,
                    severity,
                    value_bits,
                    threshold_bits,
                } => Some(FlightAlert {
                    round: *round,
                    rule: *rule,
                    severity: *severity,
                    value: f64::from_bits(*value_bits),
                    threshold: f64::from_bits(*threshold_bits),
                }),
                _ => None,
            })
            .collect()
    }

    /// Every applied topology change, normalized to `(round, u, v)` order.
    pub fn churn_events(&self) -> Vec<FlightChurn> {
        let mut out: Vec<FlightChurn> = self
            .records
            .iter()
            .filter_map(|rec| match rec {
                FlightRecord::Churn { round, op, u, v } => Some(FlightChurn {
                    round: *round,
                    op: *op,
                    u: *u,
                    v: *v,
                }),
                _ => None,
            })
            .collect();
        out.sort_by_key(|c| (c.round, c.u, c.v));
        out
    }
}

struct FlightBuf {
    /// Encoded records, oldest first, concatenated into one arena —
    /// recording is on the executor's hot path, so a capture must not
    /// allocate per record. `start` marks the first live byte (ring
    /// eviction trims lazily).
    data: Vec<u8>,
    start: usize,
    /// Per-record byte lengths of the live records — maintained only in
    /// ring mode, where eviction pops whole records off the front.
    lens: VecDeque<u32>,
    /// Live record count (also maintained in unbounded mode, where `lens`
    /// stays empty).
    count: usize,
    dropped: u64,
    capacity: Option<usize>,
}

impl FlightBuf {
    fn new(capacity: Option<usize>) -> FlightBuf {
        FlightBuf {
            data: Vec::new(),
            start: 0,
            lens: VecDeque::new(),
            count: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Appends one record encoded by `write` directly into the arena.
    fn push_with(&mut self, write: impl FnOnce(&mut Vec<u8>)) {
        let before = self.data.len();
        write(&mut self.data);
        if let Some(cap) = self.capacity {
            self.lens.push_back((self.data.len() - before) as u32);
            while self.lens.len() > cap {
                let evicted = self.lens.pop_front().expect("len > cap >= 1") as usize;
                self.start += evicted;
                self.dropped += 1;
            }
            // Trim lazily so the arena stays within ~2x the live bytes.
            if self.start > self.data.len() / 2 {
                self.data.drain(..self.start);
                self.start = 0;
            }
            self.count = self.lens.len();
        } else {
            self.count += 1;
        }
    }

    fn push(&mut self, rec: &FlightRecord) {
        self.push_with(|out| encode_record(out, rec));
    }

    /// The concatenated encoding of every live record.
    fn live(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

/// A [`Recorder`] that encodes the run into a `.gfr` capture as events
/// arrive. Metrics calls (counters, gauges, histograms, spans) are
/// dropped — the flight record is the event/transmission stream only; tee
/// it with a metrics recorder (see [`Tee`]) when both are wanted.
pub struct FlightRecorder {
    header: FlightHeader,
    buf: Mutex<FlightBuf>,
}

impl FlightRecorder {
    /// An unbounded recorder (every record kept).
    pub fn new(header: FlightHeader) -> FlightRecorder {
        FlightRecorder {
            header,
            buf: Mutex::new(FlightBuf::new(None)),
        }
    }

    /// A ring-buffered recorder keeping at most `capacity` records; older
    /// records are evicted and counted in the capture's `End` record.
    pub fn with_capacity(header: FlightHeader, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            header,
            buf: Mutex::new(FlightBuf::new(Some(capacity.max(1)))),
        }
    }

    fn buf(&self) -> std::sync::MutexGuard<'_, FlightBuf> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.buf().dropped
    }

    /// Records captured (and still retained) so far.
    pub fn len(&self) -> usize {
        self.buf().count
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.buf().count == 0
    }

    /// The complete `.gfr` byte stream captured so far (header, records,
    /// `End`). Non-destructive, so a capture can be written mid-run.
    pub fn finish(&self) -> Vec<u8> {
        let buf = self.buf();
        let live = buf.live();
        let mut out = Vec::with_capacity(64 + live.len() + 8);
        self.header.encode_into(&mut out);
        out.extend_from_slice(live);
        out.push(TAG_END);
        push_varint(&mut out, buf.dropped);
        out
    }
}

fn field_u64(fields: &[(&str, Value)], name: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| *k == name).and_then(|(_, v)| {
        v.as_u64()
            .or_else(|| v.as_f64().map(|x| x.round().max(0.0) as u64))
    })
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
    fn span_observe(&self, _path: &str, _nanos: u64) {}

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let rec = match name {
            // The oracle simulator's per-round probe and the kernel's
            // round_end both mark a completed round; either carries the
            // knowledge-curve point.
            "round" | "round_end" => {
                let Some(round) = field_u64(fields, "round") else {
                    return;
                };
                FlightRecord::RoundEnd {
                    round: round as u32,
                    known_pairs: field_u64(fields, "known_pairs").unwrap_or(0),
                }
            }
            "loss" => {
                let (Some(round), Some(msg), Some(from), Some(to)) = (
                    field_u64(fields, "round"),
                    field_u64(fields, "msg"),
                    field_u64(fields, "from"),
                    field_u64(fields, "to"),
                ) else {
                    return;
                };
                let cause = fields
                    .iter()
                    .find(|(k, _)| *k == "cause")
                    .and_then(|(_, v)| v.as_str())
                    .map(cause_code)
                    .unwrap_or(255);
                FlightRecord::Loss {
                    round: round as u32,
                    msg: msg as u32,
                    from: from as u32,
                    to: to as u32,
                    cause,
                }
            }
            "epoch_start" => {
                let (Some(epoch), Some(start)) =
                    (field_u64(fields, "epoch"), field_u64(fields, "start_round"))
                else {
                    return;
                };
                FlightRecord::EpochStart {
                    epoch: epoch as u32,
                    start_round: start as u32,
                }
            }
            "epoch_end" => {
                let Some(epoch) = field_u64(fields, "epoch") else {
                    return;
                };
                FlightRecord::EpochEnd {
                    epoch: epoch as u32,
                }
            }
            "churn" => {
                let (Some(round), Some(u), Some(v)) = (
                    field_u64(fields, "round"),
                    field_u64(fields, "u"),
                    field_u64(fields, "v"),
                ) else {
                    return;
                };
                let op = fields
                    .iter()
                    .find(|(k, _)| *k == "op")
                    .and_then(|(_, val)| val.as_str())
                    .map(churn_op_code)
                    .unwrap_or(255);
                FlightRecord::Churn {
                    round: round as u32,
                    op,
                    u: u as u32,
                    v: v as u32,
                }
            }
            "alert" => {
                let Some(round) = field_u64(fields, "round") else {
                    return;
                };
                let label = |key: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| *k == key)
                        .and_then(|(_, v)| v.as_str())
                };
                // Bit patterns, not field_u64: the observed value and
                // threshold are true f64s and must round-trip exactly.
                let bits = |key: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| *k == key)
                        .and_then(|(_, v)| v.as_f64())
                        .map(f64::to_bits)
                        .unwrap_or(0f64.to_bits())
                };
                FlightRecord::Alert {
                    round: round as u32,
                    rule: label("rule").map(alert_rule_code).unwrap_or(255),
                    severity: label("severity").map(alert_severity_code).unwrap_or(255),
                    value_bits: bits("value"),
                    threshold_bits: bits("threshold"),
                }
            }
            _ => return,
        };
        self.buf().push(&rec);
    }

    fn wants_transmissions(&self) -> bool {
        true
    }

    fn transmission(&self, round: usize, msg: u32, from: u32, dests: &[u32]) {
        // The hottest capture path — one record per attempted multicast —
        // encodes straight into the arena, borrowing `dests` rather than
        // materializing a `FlightRecord`.
        self.buf().push_with(|out| {
            out.push(TAG_TX);
            push_varint(out, round as u64);
            push_varint(out, u64::from(msg));
            push_varint(out, u64::from(from));
            push_varint(out, dests.len() as u64);
            for &d in dests {
                push_varint(out, u64::from(d));
            }
        });
    }
}

/// Fans every recorder call out to two recorders, so a [`FlightRecorder`]
/// can capture a run alongside the metrics registry (or live registry)
/// already attached to it. Enabled (and transmission-hungry) when either
/// side is.
pub struct Tee<'a> {
    a: &'a dyn Recorder,
    b: &'a dyn Recorder,
}

impl<'a> Tee<'a> {
    /// Combines two recorders.
    pub fn new(a: &'a dyn Recorder, b: &'a dyn Recorder) -> Tee<'a> {
        Tee { a, b }
    }
}

impl Recorder for Tee<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn counter(&self, name: &str, delta: u64) {
        self.a.counter(name, delta);
        self.b.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.a.gauge(name, value);
        self.b.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.a.observe(name, value);
        self.b.observe(name, value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        self.a.event(name, fields);
        self.b.event(name, fields);
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        self.a.span_observe(path, nanos);
        self.b.span_observe(path, nanos);
    }

    fn wants_transmissions(&self) -> bool {
        self.a.wants_transmissions() || self.b.wants_transmissions()
    }

    fn transmission(&self, round: usize, msg: u32, from: u32, dests: &[u32]) {
        self.a.transmission(round, msg, from, dests);
        self.b.transmission(round, msg, from, dests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FlightHeader {
        FlightHeader {
            n: 4,
            n_msgs: 4,
            radius: 2,
            engine: "oracle".to_string(),
            graph_digest: 0x1111,
            schedule_digest: 0x2222,
            fault_digest: 0,
            origins: vec![0, 1, 2, 3],
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for x in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut r = Reader {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(r.varint(), Ok(x), "{x}");
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn capture_decodes_losslessly() {
        let rec = FlightRecorder::new(header());
        rec.transmission(0, 0, 0, &[1, 2]);
        rec.event(
            "loss",
            &[
                ("round", Value::from_u64(0)),
                ("msg", Value::from_u64(0)),
                ("from", Value::from_u64(0)),
                ("to", Value::from_u64(2)),
                ("cause", Value::String("sampled".to_string())),
            ],
        );
        rec.event(
            "round_end",
            &[
                ("round", Value::from_u64(0)),
                ("known_pairs", Value::from_u64(5)),
            ],
        );
        rec.event(
            "epoch_start",
            &[
                ("epoch", Value::from_u64(1)),
                ("start_round", Value::from_u64(1)),
            ],
        );
        rec.event("epoch_end", &[("epoch", Value::from_u64(1))]);
        // Metrics calls and unrelated events leave no records.
        rec.counter("x", 1);
        rec.gauge("y", 2.0);
        rec.event("span", &[]);

        let bytes = rec.finish();
        let log = FlightLog::decode(&bytes).expect("decodes");
        assert_eq!(log.header, header());
        assert_eq!(log.records.len(), 5);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.encode(), bytes, "re-encode is byte-identical");
        assert_eq!(log.rounds(), 1);
        assert_eq!(log.txs().len(), 1);
        assert_eq!(log.txs()[0].dests, &[1, 2]);
        assert_eq!(log.losses().len(), 1);
        assert_eq!(cause_label(log.losses()[0].cause), "sampled");
        assert_eq!(log.known_pairs_curve(), vec![(0, 5)]);
        assert_eq!(log.epochs(), vec![(1, 1)]);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(header(), 2);
        for round in 0..5u64 {
            rec.event(
                "round_end",
                &[
                    ("round", Value::from_u64(round)),
                    ("known_pairs", Value::from_u64(round)),
                ],
            );
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let log = FlightLog::decode(&rec.finish()).expect("decodes");
        assert_eq!(log.dropped, 3);
        assert_eq!(log.known_pairs_curve(), vec![(3, 3), (4, 4)]);
        assert_eq!(log.encode(), rec.finish());
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(FlightLog::decode(b"").is_err());
        assert!(FlightLog::decode(b"JSON{}").is_err());
        let good = FlightRecorder::new(header()).finish();
        assert!(FlightLog::decode(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(FlightLog::decode(&trailing).is_err());
        let mut wrong_schema = good;
        wrong_schema[4] = 9; // schema varint right after the magic
        let err = FlightLog::decode(&wrong_schema).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(!FlightLog::sniff(b"JSON"));
        assert!(FlightLog::sniff(&FlightRecorder::new(header()).finish()));
    }

    #[test]
    fn tee_forwards_to_both_sides() {
        let m = crate::MetricsRecorder::new();
        let f = FlightRecorder::new(header());
        let tee = Tee::new(&m, &f);
        assert!(tee.enabled());
        assert!(tee.wants_transmissions());
        tee.counter("c", 2);
        tee.transmission(0, 1, 0, &[1]);
        tee.event(
            "round_end",
            &[
                ("round", Value::from_u64(0)),
                ("known_pairs", Value::from_u64(1)),
            ],
        );
        assert_eq!(m.counter_value("c"), 2);
        assert_eq!(m.events_emitted(), 1);
        let log = FlightLog::decode(&f.finish()).unwrap();
        assert_eq!(log.txs().len(), 1);
        assert_eq!(log.known_pairs_curve(), vec![(0, 1)]);
        // A tee of two noops stays disabled and transmission-free.
        let n1 = crate::NoopRecorder;
        let n2 = crate::NoopRecorder;
        let quiet = Tee::new(&n1, &n2);
        assert!(!quiet.enabled());
        assert!(!quiet.wants_transmissions());
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let mut a = Digest::new();
        a.write_u64(42);
        a.write_bytes(b"edges");
        let mut b = Digest::new();
        b.write_u64(42);
        b.write_bytes(b"edges");
        assert_eq!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.write_u64(43);
        c.write_bytes(b"edges");
        assert_ne!(a.finish(), c.finish());
        // Pin the FNV-1a basis so digests stay stable across builds (they
        // are part of the on-disk format).
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn cause_codes_roundtrip() {
        for (i, label) in CAUSE_LABELS.iter().enumerate() {
            assert_eq!(cause_code(label), i as u8);
            assert_eq!(cause_label(i as u8), *label);
        }
        assert_eq!(cause_code("mystery"), 255);
        assert_eq!(cause_label(255), "unknown");
        for (i, label) in CHURN_OP_LABELS.iter().enumerate() {
            assert_eq!(churn_op_code(label), i as u8);
            assert_eq!(churn_op_label(i as u8), *label);
        }
        assert_eq!(churn_op_code("teleport"), 255);
        assert_eq!(churn_op_label(255), "unknown");
    }

    #[test]
    fn alert_records_roundtrip() {
        let rec = FlightRecorder::new(header());
        rec.event(
            "round_end",
            &[
                ("round", Value::from_u64(2)),
                ("known_pairs", Value::from_u64(9)),
            ],
        );
        rec.event(
            "alert",
            &[
                ("rule", Value::String("bound".to_string())),
                ("round", Value::from_u64(2)),
                ("severity", Value::String("critical".to_string())),
                ("message", Value::String("projected breach".to_string())),
                ("value", Value::from_f64(17.25)),
                ("threshold", Value::from_f64(6.5)),
            ],
        );
        let bytes = rec.finish();
        let log = FlightLog::decode(&bytes).expect("decodes");
        assert_eq!(log.encode(), bytes, "re-encode is byte-identical");
        let alerts = log.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].round, 2);
        assert_eq!(alert_rule_label(alerts[0].rule), "bound");
        assert_eq!(alert_severity_label(alerts[0].severity), "critical");
        assert_eq!(alerts[0].value, 17.25);
        assert_eq!(alerts[0].threshold, 6.5);
        // An alert record alone does not extend the executed-round count.
        assert_eq!(log.rounds(), 3);
        for (i, label) in ALERT_RULE_LABELS.iter().enumerate() {
            assert_eq!(alert_rule_code(label), i as u8);
            assert_eq!(alert_rule_label(i as u8), *label);
        }
        for (i, label) in ALERT_SEVERITY_LABELS.iter().enumerate() {
            assert_eq!(alert_severity_code(label), i as u8);
            assert_eq!(alert_severity_label(i as u8), *label);
        }
        assert_eq!(alert_rule_code("mystery"), 255);
        assert_eq!(alert_severity_label(255), "unknown");
    }

    #[test]
    fn churn_records_roundtrip() {
        let rec = FlightRecorder::new(header());
        rec.event(
            "churn",
            &[
                ("round", Value::from_u64(3)),
                ("op", Value::String("edge_remove".to_string())),
                ("u", Value::from_u64(1)),
                ("v", Value::from_u64(2)),
            ],
        );
        rec.event(
            "loss",
            &[
                ("round", Value::from_u64(4)),
                ("msg", Value::from_u64(0)),
                ("from", Value::from_u64(1)),
                ("to", Value::from_u64(2)),
                ("cause", Value::String("churn_invalidated".to_string())),
            ],
        );
        let bytes = rec.finish();
        let log = FlightLog::decode(&bytes).expect("decodes");
        assert_eq!(log.encode(), bytes, "re-encode is byte-identical");
        let churn = log.churn_events();
        assert_eq!(churn.len(), 1);
        assert_eq!(churn[0].round, 3);
        assert_eq!(churn_op_label(churn[0].op), "edge_remove");
        assert_eq!((churn[0].u, churn[0].v), (1, 2));
        assert_eq!(cause_label(log.losses()[0].cause), "churn_invalidated");
        // A churn record alone does not extend the executed-round count.
        assert_eq!(log.rounds(), 5);
    }
}
