//! Planner cost profiler: hierarchical phase timing with work counters,
//! plus an optional counting global allocator attributing heap traffic to
//! the active phase.
//!
//! The planner-side complement to the run-side observability stack
//! ([`crate::Recorder`] metrics, flight capture): where `plan_ms` used to
//! be one opaque number, the profiler breaks schedule construction into a
//! self-time/total-time call tree — BFS sweeps, tree building, labeling,
//! generation, CSR flattening, validation — cheap enough to stay on in
//! production binaries.
//!
//! # Model
//!
//! A [`Profiler`] installs itself into a thread-local slot on
//! [`Profiler::begin`]; instrumented code calls the free function
//! [`phase`] which returns an RAII [`PhaseGuard`]. When no profiler is
//! installed the guard is inert and the call costs one thread-local read
//! and a branch, so instrumentation sites need no configuration plumbing
//! and no signature changes. Phases nest: a guard opened while another is
//! live becomes (or reuses) a child node of the active phase. Work
//! counters ([`count`]) attribute to the active phase.
//!
//! [`Profiler::finish`] uninstalls the profiler and returns the recorded
//! [`Profile`] forest. Self time is derived at report time as a node's
//! total minus the totals of its children, so the invariant *sum of child
//! totals ≤ parent total* holds by construction (modulo clock monotonicity).
//!
//! # Threading caveat
//!
//! The profiler is deliberately thread-local: the sequential construction
//! path is the profiled one. Work done on rayon workers (the parallel
//! spanning-tree sweep, parallel schedule validation) is *not* attributed
//! to phases opened on the calling thread — only the calling thread's
//! wall-clock wait shows up, under the phase that spawned the parallel
//! section. `gossip profile` therefore drives the sequential planner.
//!
//! # Allocator attribution (`prof-alloc` feature)
//!
//! [`ProfAlloc`] is a counting [`std::alloc::GlobalAlloc`] wrapper around
//! the system allocator. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gossip_telemetry::profile::ProfAlloc =
//!     gossip_telemetry::profile::ProfAlloc;
//! ```
//!
//! It maintains four process-global relaxed atomics (allocation count,
//! allocated bytes, live bytes, peak live bytes) and never touches
//! thread-locals or the profiler itself, so there is no reentrancy hazard.
//! [`PhaseGuard`]s snapshot the counters at enter/exit and attribute the
//! deltas to their phase; per-phase peak live bytes piggybacks on a single
//! global high-water atomic that guards swap on enter and fold back on
//! exit. Caveats: attribution is process-global, so allocations from
//! *other* threads during a phase are charged to it; and like `total_ns`,
//! a parent phase's numbers include its children's. Both are documented
//! properties, not bugs — the profiler answers "what does this phase cost
//! the process", not "what did this stack frame malloc".

use crate::Value;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Instant;

/// One phase in the recorded tree.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    counters: BTreeMap<String, u64>,
    allocs: u64,
    alloc_bytes: u64,
    peak_bytes: u64,
}

impl Node {
    fn new(name: &str, parent: Option<usize>) -> Node {
        Node {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            counters: BTreeMap::new(),
            allocs: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        }
    }
}

struct State {
    epoch: u64,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    current: Option<usize>,
}

thread_local! {
    static PROFILER: RefCell<Option<State>> = const { RefCell::new(None) };
    static NEXT_EPOCH: Cell<u64> = const { Cell::new(1) };
}

/// Handle for an installed profiler. Created by [`Profiler::begin`];
/// consumed by [`Profiler::finish`]. Dropping it without finishing
/// uninstalls the profiler and discards the recording.
pub struct Profiler {
    epoch: u64,
}

impl Profiler {
    /// Installs a fresh profiler into this thread's slot (replacing any
    /// prior one — the replaced handle's `finish` then returns an empty
    /// profile) and starts recording phases.
    pub fn begin() -> Profiler {
        let epoch = NEXT_EPOCH.with(|e| {
            let v = e.get();
            e.set(v + 1);
            v
        });
        PROFILER.with(|p| {
            *p.borrow_mut() = Some(State {
                epoch,
                nodes: Vec::new(),
                roots: Vec::new(),
                current: None,
            });
        });
        Profiler { epoch }
    }

    /// Uninstalls the profiler and returns everything recorded since
    /// [`Profiler::begin`]. Phases still open on other live guards keep
    /// their recorded calls but contribute no further time.
    pub fn finish(self) -> Profile {
        let state = PROFILER.with(|p| {
            let mut slot = p.borrow_mut();
            if slot.as_ref().is_some_and(|s| s.epoch == self.epoch) {
                slot.take()
            } else {
                None
            }
        });
        std::mem::forget(self);
        match state {
            Some(s) => Profile {
                nodes: s.nodes,
                roots: s.roots,
                alloc_tracking: alloc_tracking(),
            },
            None => Profile {
                nodes: Vec::new(),
                roots: Vec::new(),
                alloc_tracking: alloc_tracking(),
            },
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        PROFILER.with(|p| {
            let mut slot = p.borrow_mut();
            if slot.as_ref().is_some_and(|s| s.epoch == self.epoch) {
                *slot = None;
            }
        });
    }
}

/// Whether a profiler is installed on this thread. Instrumentation sites
/// may use this to skip computing expensive counter deltas.
pub fn active() -> bool {
    PROFILER.with(|p| p.borrow().is_some())
}

/// Opens a phase named `name` under the currently active phase (or as a
/// root). Returns an inert guard (one TLS read, no allocation) when no
/// profiler is installed. Re-entering a name under the same parent reuses
/// the existing node and bumps its call count.
pub fn phase(name: &str) -> PhaseGuard {
    PROFILER.with(|p| {
        let mut slot = p.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return PhaseGuard { live: None };
        };
        let parent = state.current;
        let siblings = match parent {
            Some(pi) => &state.nodes[pi].children,
            None => &state.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&c| state.nodes[c].name == name);
        let idx = existing.unwrap_or_else(|| {
            let idx = state.nodes.len();
            state.nodes.push(Node::new(name, parent));
            match parent {
                Some(pi) => state.nodes[pi].children.push(idx),
                None => state.roots.push(idx),
            }
            idx
        });
        state.nodes[idx].calls += 1;
        state.current = Some(idx);
        PhaseGuard {
            live: Some(LiveGuard {
                epoch: state.epoch,
                idx,
                #[cfg(feature = "prof-alloc")]
                alloc_enter: prof_alloc::phase_enter(),
                start: Instant::now(),
            }),
        }
    })
}

/// Adds `delta` to the named work counter of the active phase. A no-op
/// when no profiler is installed or no phase is open.
pub fn count(name: &str, delta: u64) {
    PROFILER.with(|p| {
        let mut slot = p.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        let Some(cur) = state.current else { return };
        *state.nodes[cur]
            .counters
            .entry(name.to_string())
            .or_insert(0) += delta;
    });
}

struct LiveGuard {
    epoch: u64,
    idx: usize,
    #[cfg(feature = "prof-alloc")]
    alloc_enter: prof_alloc::PhaseEnter,
    start: Instant,
}

/// RAII guard for one phase occurrence; see [`phase`].
pub struct PhaseGuard {
    live: Option<LiveGuard>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let elapsed = live.start.elapsed().as_nanos() as u64;
        PROFILER.with(|p| {
            let mut slot = p.borrow_mut();
            let Some(state) = slot.as_mut() else { return };
            if state.epoch != live.epoch {
                return;
            }
            #[cfg(feature = "prof-alloc")]
            {
                let (d_allocs, d_bytes, phase_peak) = prof_alloc::phase_exit(&live.alloc_enter);
                let node = &mut state.nodes[live.idx];
                node.allocs += d_allocs;
                node.alloc_bytes += d_bytes;
                node.peak_bytes = node.peak_bytes.max(phase_peak);
            }
            let node = &mut state.nodes[live.idx];
            node.total_ns += elapsed;
            state.current = node.parent;
        });
    }
}

/// The recorded phase forest, returned by [`Profiler::finish`].
#[derive(Debug, Clone)]
pub struct Profile {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    alloc_tracking: bool,
}

impl Profile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Whether the counting allocator was registered and saw traffic
    /// (alloc fields are meaningful only then).
    pub fn alloc_tracking(&self) -> bool {
        self.alloc_tracking
    }

    /// Total milliseconds attributed to root phases (the profiler's view
    /// of the whole profiled region).
    pub fn attributed_ms(&self) -> f64 {
        self.roots
            .iter()
            .map(|&r| self.nodes[r].total_ns as f64 * 1e-6)
            .sum()
    }

    /// Self time of a node: total minus children's totals (saturating, in
    /// case of clock jitter).
    fn self_ns(&self, idx: usize) -> u64 {
        let child_total: u64 = self.nodes[idx]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum();
        self.nodes[idx].total_ns.saturating_sub(child_total)
    }

    /// Sum of `total_ns` (as ms) over every node with this phase name,
    /// anywhere in the forest. Phase names in the planner taxonomy do not
    /// nest under themselves, so no double counting occurs there.
    pub fn named_total_ms(&self, name: &str) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.name == name)
            .map(|n| n.total_ns as f64 * 1e-6)
            .sum()
    }

    /// Sum of the named work counter over every phase.
    pub fn named_counter(&self, name: &str) -> u64 {
        self.nodes.iter().filter_map(|n| n.counters.get(name)).sum()
    }

    /// Highest per-phase peak live bytes seen (0 without `prof-alloc`
    /// tracking).
    pub fn peak_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.peak_bytes).max().unwrap_or(0)
    }

    fn node_value(&self, idx: usize) -> Value {
        let n = &self.nodes[idx];
        let mut fields = vec![
            ("name".to_string(), Value::String(n.name.clone())),
            ("calls".to_string(), Value::from_u64(n.calls)),
            (
                "total_ms".to_string(),
                Value::from_f64(n.total_ns as f64 * 1e-6),
            ),
            (
                "self_ms".to_string(),
                Value::from_f64(self.self_ns(idx) as f64 * 1e-6),
            ),
        ];
        if !n.counters.is_empty() {
            fields.push((
                "counters".to_string(),
                Value::Object(
                    n.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::from_u64(v)))
                        .collect(),
                ),
            ));
        }
        if self.alloc_tracking {
            fields.push((
                "alloc".to_string(),
                Value::Object(vec![
                    ("allocs".to_string(), Value::from_u64(n.allocs)),
                    ("bytes".to_string(), Value::from_u64(n.alloc_bytes)),
                    ("peak_bytes".to_string(), Value::from_u64(n.peak_bytes)),
                ]),
            ));
        }
        if !n.children.is_empty() {
            fields.push((
                "children".to_string(),
                Value::Array(n.children.iter().map(|&c| self.node_value(c)).collect()),
            ));
        }
        Value::Object(fields)
    }

    /// The phase forest as a JSON array of nested phase objects
    /// (`{name, calls, total_ms, self_ms, counters?, alloc?, children?}`),
    /// ready to embed in a PROF artifact.
    pub fn to_value(&self) -> Value {
        Value::Array(self.roots.iter().map(|&r| self.node_value(r)).collect())
    }

    /// Collapsed-stack export for flamegraph tooling: one line per phase,
    /// `root;child;leaf <self-time-µs>`.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<(usize, String)> = self
            .roots
            .iter()
            .rev()
            .map(|&r| (r, self.nodes[r].name.clone()))
            .collect();
        while let Some((idx, path)) = stack.pop() {
            let self_us = self.self_ns(idx) / 1_000;
            out.push_str(&format!("{path} {self_us}\n"));
            for &c in self.nodes[idx].children.iter().rev() {
                stack.push((c, format!("{path};{}", self.nodes[c].name)));
            }
        }
        out
    }
}

#[cfg(feature = "prof-alloc")]
#[allow(unsafe_code)]
mod prof_alloc {
    //! The counting global allocator. Process-global relaxed atomics only:
    //! the allocator must never touch thread-locals or the profiler (it
    //! runs during TLS teardown and inside the profiler's own
    //! allocations).
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);
    /// High-water mark since the innermost open phase began; see
    /// [`phase_enter`]/[`phase_exit`].
    static PHASE_PEAK: AtomicU64 = AtomicU64::new(0);

    /// Counting wrapper around the system allocator; register with
    /// `#[global_allocator]`.
    pub struct ProfAlloc;

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(size, Relaxed);
        let live = LIVE.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(live, Relaxed);
        PHASE_PEAK.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: u64) {
        LIVE.fetch_sub(size, Relaxed);
    }

    // SAFETY: defers all allocation to `System`; the bookkeeping is plain
    // relaxed atomics with no allocation, locking, or TLS of its own.
    unsafe impl GlobalAlloc for ProfAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    /// Snapshot taken when a phase opens.
    pub(super) struct PhaseEnter {
        allocs: u64,
        bytes: u64,
        saved_peak: u64,
    }

    pub(super) fn phase_enter() -> PhaseEnter {
        PhaseEnter {
            allocs: ALLOCS.load(Relaxed),
            bytes: BYTES.load(Relaxed),
            // Reset the phase high-water mark to current live, saving the
            // enclosing phase's mark to fold back on exit.
            saved_peak: PHASE_PEAK.swap(LIVE.load(Relaxed), Relaxed),
        }
    }

    /// Returns `(allocations, bytes, peak live bytes)` attributed to the
    /// phase, and restores the enclosing phase's high-water mark (a parent
    /// peak is at least its child's, so `fetch_max` is the correct fold).
    pub(super) fn phase_exit(enter: &PhaseEnter) -> (u64, u64, u64) {
        let phase_peak = PHASE_PEAK.load(Relaxed);
        PHASE_PEAK.fetch_max(enter.saved_peak, Relaxed);
        (
            ALLOCS.load(Relaxed).wrapping_sub(enter.allocs),
            BYTES.load(Relaxed).wrapping_sub(enter.bytes),
            phase_peak,
        )
    }

    /// Whether the counting allocator is registered (detected by traffic:
    /// any Rust program allocates long before profiling starts).
    pub(super) fn tracking() -> bool {
        ALLOCS.load(Relaxed) > 0
    }
}

#[cfg(feature = "prof-alloc")]
pub use prof_alloc::ProfAlloc;

#[cfg(feature = "prof-alloc")]
fn alloc_tracking() -> bool {
    prof_alloc::tracking()
}

#[cfg(not(feature = "prof-alloc"))]
fn alloc_tracking() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_for(micros: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < micros as u128 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn uninstalled_guards_are_inert() {
        assert!(!active());
        {
            let _g = phase("tree");
            count("sweeps", 3);
        }
        // Nothing was installed, so a later profiler starts clean.
        let prof = Profiler::begin().finish();
        assert!(prof.is_empty());
        assert_eq!(prof.named_counter("sweeps"), 0);
    }

    #[test]
    fn records_nested_tree_with_counts() {
        let profiler = Profiler::begin();
        assert!(active());
        {
            let _plan = phase("plan");
            for _ in 0..3 {
                let _sweep = phase("bfs_sweep");
                count("frontier_popped", 10);
                spin_for(200);
            }
            {
                let _label = phase("label");
                spin_for(100);
            }
            spin_for(50);
        }
        let prof = profiler.finish();
        assert!(!active());
        assert_eq!(prof.roots.len(), 1);
        let plan = &prof.nodes[prof.roots[0]];
        assert_eq!(plan.name, "plan");
        assert_eq!(plan.calls, 1);
        assert_eq!(plan.children.len(), 2);
        let sweep_idx = plan.children[0];
        assert_eq!(prof.nodes[sweep_idx].name, "bfs_sweep");
        assert_eq!(prof.nodes[sweep_idx].calls, 3);
        assert_eq!(prof.named_counter("frontier_popped"), 30);
        // Children's totals never exceed the parent's.
        let child_total: u64 = plan.children.iter().map(|&c| prof.nodes[c].total_ns).sum();
        assert!(child_total <= plan.total_ns);
        assert!(prof.attributed_ms() > 0.0);
        assert!(prof.named_total_ms("bfs_sweep") > 0.0);
    }

    #[test]
    fn value_export_has_expected_fields() {
        let profiler = Profiler::begin();
        {
            let _a = phase("plan");
            let _b = phase("tree");
            count("tree_edges", 9);
        }
        let prof = profiler.finish();
        let v = prof.to_value();
        let roots = match &v {
            Value::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].get("name").and_then(Value::as_str), Some("plan"));
        assert_eq!(roots[0].get("calls").and_then(Value::as_u64), Some(1));
        assert!(roots[0].get("total_ms").and_then(Value::as_f64).is_some());
        assert!(roots[0].get("self_ms").and_then(Value::as_f64).is_some());
        let children = roots[0].get("children").and_then(Value::as_array).unwrap();
        assert_eq!(
            children[0].get("name").and_then(Value::as_str),
            Some("tree")
        );
        let counters = children[0].get("counters").unwrap();
        assert_eq!(counters.get("tree_edges").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn collapsed_stacks_are_semicolon_paths() {
        let profiler = Profiler::begin();
        {
            let _a = phase("plan");
            {
                let _b = phase("tree");
                let _c = phase("bfs_sweep");
            }
            let _d = phase("flatten");
        }
        let prof = profiler.finish();
        let flame = prof.collapsed_stacks();
        let lines: Vec<&str> = flame.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().any(|l| l.starts_with("plan ")));
        assert!(lines.iter().any(|l| l.starts_with("plan;tree;bfs_sweep ")));
        for line in lines {
            let (_stack, n) = line.rsplit_once(' ').expect("space-separated");
            n.parse::<u64>().expect("self-time in µs");
        }
    }

    #[test]
    fn dropping_profiler_uninstalls() {
        {
            let _p = Profiler::begin();
            assert!(active());
        }
        assert!(!active());
    }

    #[test]
    fn replacement_leaves_newest_profiler_installed() {
        let old = Profiler::begin();
        let new = Profiler::begin();
        {
            let _g = phase("tree");
        }
        // The replaced handle finishes empty and must not uninstall the
        // newer profiler.
        assert!(old.finish().is_empty());
        assert!(active());
        let prof = new.finish();
        assert_eq!(prof.roots.len(), 1);
    }
}
