//! Streaming watchdog: declarative alert rules judged against the run
//! *while* it executes.
//!
//! Everything so far records; nothing judges. [`AlertEngine`] is a
//! [`Recorder`] decorator (composable with `Paced`/[`crate::Tee`], like
//! every other recorder in the stack) that watches the event stream flow
//! through it and evaluates a [`RuleSet`] of invariants as each round
//! completes:
//!
//! - **stall** — no `round_end` arrived within a wall-clock budget;
//! - **flatline** — the knowledge curve gained no new `known_pairs` for
//!   `k` consecutive rounds;
//! - **bound** — the run is projected to (or did) cross Theorem 1's
//!   `n + r` round bound, extrapolating the knowledge curve so the alert
//!   fires *before* the bound is actually crossed;
//! - **loss_spike** — the per-round loss rate spiked;
//! - **epoch_budget** — the self-healing executor is burning through its
//!   repair-epoch budget;
//! - **churn_storm** — one round invalidated an outsized number of
//!   in-flight deliveries.
//!
//! Fired alerts become three things at once: a structured [`Alert`] in
//! the shared [`AlertSink`] (served on `/alerts` by `gossip-obsd`), an
//! `alert` event forwarded downstream (so a teed flight recorder captures
//! an ALERT record and the live `/events` stream carries it), and an
//! `alerts/<rule>/<severity>` counter (rendered by the Prometheus
//! exposition as `gossip_alerts_total{rule,severity}`). Each rule fires
//! at most once per run — a watchdog that pages once per condition, not
//! once per round.
//!
//! Rules are configurable via a schema-versioned JSON document (see
//! [`RuleSet::from_value`]); a rule file *replaces* the default set, so a
//! stall-only file keeps every other judgement out of deterministic runs.

use crate::{check_schema_version, Recorder, Value, SCHEMA_VERSION};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How loud an alert is. `Critical` flips `/healthz` to `degraded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; surfaced but not a failure signal.
    Info,
    /// Something is off-nominal and worth a look.
    Warn,
    /// An invariant is (about to be) violated; degrades `/healthz`.
    Critical,
}

impl Severity {
    /// The stable lowercase label (also the on-disk/JSON spelling).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parses the JSON spelling.
    pub fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warn" => Ok(Severity::Warn),
            "critical" => Ok(Severity::Critical),
            other => Err(format!(
                "unknown severity {other:?} (expected info, warn, or critical)"
            )),
        }
    }
}

/// One fired alert: which rule, when, how loud, and the observed value
/// against its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Rule name (`stall`, `flatline`, `bound`, `loss_spike`,
    /// `epoch_budget`, `churn_storm`).
    pub rule: String,
    /// The round the rule fired at (the last completed round; 0 when no
    /// round had completed yet).
    pub round: u64,
    /// How loud.
    pub severity: Severity,
    /// Human-readable description of what tripped.
    pub message: String,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// The configured threshold it tripped against.
    pub threshold: f64,
}

impl Alert {
    /// The alert as a JSON object (the `/alerts` and artifact shape).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::String(self.rule.clone())),
            ("round".to_string(), Value::from_u64(self.round)),
            (
                "severity".to_string(),
                Value::String(self.severity.label().to_string()),
            ),
            ("message".to_string(), Value::String(self.message.clone())),
            ("value".to_string(), Value::from_f64(self.value)),
            ("threshold".to_string(), Value::from_f64(self.threshold)),
        ])
    }
}

/// Round-stall rule: no `round_end` within `budget_ms` of wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallRule {
    /// Wall budget between consecutive `round_end`s, in milliseconds.
    pub budget_ms: u64,
    /// Severity when fired.
    pub severity: Severity,
}

/// Knowledge-curve flatline rule: no new `known_pairs` over `rounds`
/// consecutive completed rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatlineRule {
    /// How many rounds without progress trip the rule.
    pub rounds: u64,
    /// Severity when fired.
    pub severity: Severity,
}

/// Theorem 1 bound rule: the run crossed — or is *projected* to cross —
/// the `n + r` round bound. The projection extrapolates the recent
/// knowledge-curve slope and fires only when the projected makespan
/// exceeds the bound by `margin_pct` for `sustain` consecutive rounds
/// past a quarter of the bound, so a clean on-pace run never trips it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundRule {
    /// Percentage margin the projection must exceed the bound by.
    pub margin_pct: f64,
    /// Consecutive over-margin projections required before firing.
    pub sustain: u64,
    /// Severity when fired.
    pub severity: Severity,
}

/// Loss-rate spike rule: in one round, `losses / (losses + new pairs)`
/// reached `rate` with at least `min_count` losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossSpikeRule {
    /// Loss-rate threshold in `[0, 1]`.
    pub rate: f64,
    /// Minimum losses in the round before the rate is judged.
    pub min_count: u64,
    /// Severity when fired.
    pub severity: Severity,
}

/// Repair-epoch budget rule: the resilient executor reached `fraction`
/// of its `--max-epochs` budget. Dormant unless the epoch budget was
/// supplied via [`AlertEngine::max_epochs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochBudgetRule {
    /// Fraction of the epoch budget in `(0, 1]` that trips the rule.
    pub fraction: f64,
    /// Severity when fired.
    pub severity: Severity,
}

/// Churn invalidation-storm rule: one round invalidated at least
/// `invalidated` in-flight deliveries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnStormRule {
    /// Invalidated deliveries in a single round that trip the rule.
    pub invalidated: u64,
    /// Severity when fired.
    pub severity: Severity,
}

/// The set of enabled rules. [`RuleSet::default`] enables all six with
/// conservative thresholds; a JSON rule file *replaces* the set.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    /// Round-stall watchdog.
    pub stall: Option<StallRule>,
    /// Knowledge-curve flatline.
    pub flatline: Option<FlatlineRule>,
    /// `n + r` bound breach / projection.
    pub bound: Option<BoundRule>,
    /// Per-round loss-rate spike.
    pub loss_spike: Option<LossSpikeRule>,
    /// Repair-epoch budget burn.
    pub epoch_budget: Option<EpochBudgetRule>,
    /// Churn invalidation storm.
    pub churn_storm: Option<ChurnStormRule>,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet {
            stall: Some(StallRule {
                budget_ms: 30_000,
                severity: Severity::Critical,
            }),
            flatline: Some(FlatlineRule {
                rounds: 16,
                severity: Severity::Warn,
            }),
            bound: Some(BoundRule {
                margin_pct: 10.0,
                sustain: 3,
                severity: Severity::Critical,
            }),
            loss_spike: Some(LossSpikeRule {
                rate: 0.5,
                min_count: 8,
                severity: Severity::Warn,
            }),
            epoch_budget: Some(EpochBudgetRule {
                fraction: 0.75,
                severity: Severity::Warn,
            }),
            churn_storm: Some(ChurnStormRule {
                invalidated: 64,
                severity: Severity::Warn,
            }),
        }
    }
}

impl RuleSet {
    /// An empty set (nothing fires); rules are added by the JSON parser.
    fn none() -> RuleSet {
        RuleSet {
            stall: None,
            flatline: None,
            bound: None,
            loss_spike: None,
            epoch_budget: None,
            churn_storm: None,
        }
    }

    /// Parses a schema-versioned rule document:
    ///
    /// ```json
    /// { "schema_version": 1,
    ///   "rules": [
    ///     { "rule": "stall", "severity": "critical", "budget_ms": 100 },
    ///     { "rule": "bound", "margin_pct": 10 } ] }
    /// ```
    ///
    /// The listed rules *replace* the default set; omitted per-rule
    /// fields keep that rule's default threshold/severity. Unknown rule
    /// names are rejected (a typo must not silently disable a watchdog).
    pub fn from_value(doc: &Value) -> Result<RuleSet, String> {
        check_schema_version(doc)?;
        let rules = doc
            .get("rules")
            .and_then(Value::as_array)
            .ok_or("rule file needs a \"rules\" array")?;
        let defaults = RuleSet::default();
        let mut set = RuleSet::none();
        for (i, r) in rules.iter().enumerate() {
            let name = r
                .get("rule")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rules[{i}]: missing \"rule\" name"))?;
            let severity = match r.get("severity").and_then(Value::as_str) {
                Some(s) => Some(Severity::parse(s).map_err(|e| format!("rules[{i}]: {e}"))?),
                None => None,
            };
            let f64_of = |key: &str, default: f64| -> f64 {
                r.get(key).and_then(Value::as_f64).unwrap_or(default)
            };
            let u64_of = |key: &str, default: u64| -> u64 {
                r.get(key).and_then(Value::as_u64).unwrap_or(default)
            };
            match name {
                "stall" => {
                    let d = defaults.stall.expect("default");
                    set.stall = Some(StallRule {
                        budget_ms: u64_of("budget_ms", d.budget_ms),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                "flatline" => {
                    let d = defaults.flatline.expect("default");
                    set.flatline = Some(FlatlineRule {
                        rounds: u64_of("rounds", d.rounds).max(1),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                "bound" => {
                    let d = defaults.bound.expect("default");
                    set.bound = Some(BoundRule {
                        margin_pct: f64_of("margin_pct", d.margin_pct).max(0.0),
                        sustain: u64_of("sustain", d.sustain).max(1),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                "loss_spike" => {
                    let d = defaults.loss_spike.expect("default");
                    set.loss_spike = Some(LossSpikeRule {
                        rate: f64_of("rate", d.rate).clamp(0.0, 1.0),
                        min_count: u64_of("min_count", d.min_count).max(1),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                "epoch_budget" => {
                    let d = defaults.epoch_budget.expect("default");
                    set.epoch_budget = Some(EpochBudgetRule {
                        fraction: f64_of("fraction", d.fraction).clamp(0.0, 1.0),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                "churn_storm" => {
                    let d = defaults.churn_storm.expect("default");
                    set.churn_storm = Some(ChurnStormRule {
                        invalidated: u64_of("invalidated", d.invalidated).max(1),
                        severity: severity.unwrap_or(d.severity),
                    });
                }
                other => {
                    return Err(format!(
                        "rules[{i}]: unknown rule {other:?} (expected stall, flatline, bound, \
                         loss_spike, epoch_budget, or churn_storm)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

impl std::str::FromStr for RuleSet {
    type Err = String;

    /// Parses a rule file's text content (JSON).
    fn from_str(text: &str) -> Result<RuleSet, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        RuleSet::from_value(&doc)
    }
}

/// Streaming evaluation state; lives inside the sink's mutex so the
/// server's wall-clock `poll` and the run's event stream judge the same
/// state.
#[derive(Debug)]
struct WatchState {
    /// When the engine was armed (the baseline for the first stall check).
    started: Instant,
    /// Wall time of the last completed round.
    last_round_end: Option<Instant>,
    /// Last completed round index.
    last_round: u64,
    /// Best (highest) `known_pairs` seen and the round it was reached.
    best_known: u64,
    best_known_round: u64,
    /// Whether any curve point has arrived yet.
    curve_started: bool,
    /// Recent `(round, known_pairs)` points for slope extrapolation.
    window: Vec<(u64, u64)>,
    /// Consecutive rounds whose projection exceeded the bound + margin.
    over_projection: u64,
    /// Per-round accumulators, reset on every `round_end`.
    losses_this_round: u64,
    invalidated_this_round: u64,
    /// Single-shot latches: each rule fires at most once per run.
    fired_stall: bool,
    fired_flatline: bool,
    fired_bound: bool,
    fired_loss_spike: bool,
    fired_epoch_budget: bool,
    fired_churn_storm: bool,
}

impl WatchState {
    fn new() -> WatchState {
        WatchState {
            started: Instant::now(),
            last_round_end: None,
            last_round: 0,
            best_known: 0,
            best_known_round: 0,
            curve_started: false,
            window: Vec::new(),
            over_projection: 0,
            losses_this_round: 0,
            invalidated_this_round: 0,
            fired_stall: false,
            fired_flatline: false,
            fired_bound: false,
            fired_loss_spike: false,
            fired_epoch_budget: false,
            fired_churn_storm: false,
        }
    }
}

/// How many recent curve points the bound projection extrapolates over.
const PROJECTION_WINDOW: usize = 8;

/// Shared alert state: the fired alerts, the critical flag `/healthz`
/// degrades on, and the streaming watch state. `Arc`-shared between the
/// borrowed [`AlertEngine`] on the run thread and long-lived consumers
/// (the obsd server, the CLI's exit-code check).
pub struct AlertSink {
    rules: RuleSet,
    ctx: Mutex<Context>,
    state: Mutex<WatchState>,
    alerts: Mutex<Vec<Alert>>,
    /// How many of `alerts` the engine has already emitted downstream.
    /// Poll-fired alerts land in the sink from the server thread; the
    /// engine drains the gap on its next event so they still reach the
    /// flight record and the live registry.
    emitted: AtomicUsize,
    critical: AtomicBool,
    done: AtomicBool,
}

/// Run facts the rules judge against; supplied by whoever builds the
/// engine (the CLI knows `n + r` and the pair total, the engine cannot).
#[derive(Debug, Default, Clone, Copy)]
struct Context {
    /// Theorem 1's `n + r` round bound.
    bound: Option<u64>,
    /// Complete-gossip pair total (`n * n_msgs`).
    total_pairs: Option<u64>,
    /// The resilient executor's epoch budget.
    max_epochs: Option<u64>,
}

impl AlertSink {
    /// An empty sink for the given rules. Usually created via
    /// [`AlertEngine::new`]; public so servers/tests can hold one
    /// directly.
    pub fn new(rules: RuleSet) -> AlertSink {
        AlertSink {
            rules,
            ctx: Mutex::new(Context::default()),
            state: Mutex::new(WatchState::new()),
            alerts: Mutex::new(Vec::new()),
            emitted: AtomicUsize::new(0),
            critical: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> Vec<Alert> {
        Self::lock(&self.alerts).clone()
    }

    /// Number of alerts fired so far.
    pub fn len(&self) -> usize {
        Self::lock(&self.alerts).len()
    }

    /// Whether nothing has fired.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any critical alert fired (the `/healthz` degraded signal).
    pub fn has_critical(&self) -> bool {
        self.critical.load(Ordering::Relaxed)
    }

    /// Marks the run complete: the wall-clock stall poll disarms (a
    /// finished run lingering for scrapes is not stalled).
    pub fn set_done(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// Fired-alert counts grouped by `(rule, severity)`, sorted — the
    /// Prometheus `gossip_alerts_total` series.
    pub fn counts(&self) -> Vec<((String, &'static str), u64)> {
        let mut counts: Vec<((String, &'static str), u64)> = Vec::new();
        for a in Self::lock(&self.alerts).iter() {
            let key = (a.rule.clone(), a.severity.label());
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => counts.push((key, 1)),
            }
        }
        counts.sort();
        counts
    }

    /// The schema-versioned `kind: "alerts"` artifact / `/alerts` snapshot.
    pub fn to_value(&self) -> Value {
        let alerts = Self::lock(&self.alerts);
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::from_u64(SCHEMA_VERSION),
            ),
            ("kind".to_string(), Value::String("alerts".to_string())),
            ("count".to_string(), Value::from_u64(alerts.len() as u64)),
            ("critical".to_string(), Value::Bool(self.has_critical())),
            (
                "alerts".to_string(),
                Value::Array(alerts.iter().map(Alert::to_value).collect()),
            ),
        ])
    }

    fn push(&self, alert: Alert) {
        if alert.severity == Severity::Critical {
            self.critical.store(true, Ordering::Relaxed);
        }
        Self::lock(&self.alerts).push(alert);
    }

    /// Alerts pushed since the engine last emitted downstream, advancing
    /// the cursor past them. The cursor swap happens under the alerts
    /// lock, so a poll racing an engine flush hands each alert to exactly
    /// one side.
    fn take_unemitted(&self) -> Vec<Alert> {
        let alerts = Self::lock(&self.alerts);
        let start = self.emitted.swap(alerts.len(), Ordering::Relaxed);
        alerts[start.min(alerts.len())..].to_vec()
    }

    /// Wall-clock stall check with no event required — called by the
    /// `/alerts` and `/healthz` handlers so a *hung* run (one emitting
    /// nothing at all) still surfaces. Returns the alert if it fired.
    pub fn poll(&self) -> Option<Alert> {
        if self.done.load(Ordering::Relaxed) {
            return None;
        }
        let rule = self.rules.stall?;
        let mut state = Self::lock(&self.state);
        if state.fired_stall {
            return None;
        }
        let since = state.last_round_end.unwrap_or(state.started);
        let elapsed_ms = since.elapsed().as_secs_f64() * 1e3;
        if elapsed_ms <= rule.budget_ms as f64 {
            return None;
        }
        state.fired_stall = true;
        let alert = Alert {
            rule: "stall".to_string(),
            round: state.last_round,
            severity: rule.severity,
            message: format!(
                "no round completed for {elapsed_ms:.0} ms (budget {} ms)",
                rule.budget_ms
            ),
            value: elapsed_ms,
            threshold: rule.budget_ms as f64,
        };
        drop(state);
        self.push(alert.clone());
        Some(alert)
    }

    /// Judges one completed round; returns every alert that fired on it.
    fn on_round_end(&self, round: u64, known_pairs: Option<u64>) -> Vec<Alert> {
        let now = Instant::now();
        let ctx = *Self::lock(&self.ctx);
        let mut state = Self::lock(&self.state);
        let mut fired = Vec::new();

        // Stall: wall time since the previous completed round (or since
        // the engine was armed). Judged on arrival, so a paced run whose
        // cadence blows the budget is caught even though events do flow.
        if let Some(rule) = self.rules.stall {
            if !state.fired_stall {
                let since = state.last_round_end.unwrap_or(state.started);
                let elapsed_ms = (now - since).as_secs_f64() * 1e3;
                if elapsed_ms > rule.budget_ms as f64 {
                    state.fired_stall = true;
                    fired.push(Alert {
                        rule: "stall".to_string(),
                        round,
                        severity: rule.severity,
                        message: format!(
                            "round {round} took {elapsed_ms:.0} ms of wall clock (budget {} ms)",
                            rule.budget_ms
                        ),
                        value: elapsed_ms,
                        threshold: rule.budget_ms as f64,
                    });
                }
            }
        }

        // Loss spike: this round's losses against its successful new
        // pairs (the knowledge-curve delta is exactly the first
        // deliveries that landed).
        let delta = known_pairs.map(|p| p.saturating_sub(state.best_known));
        if let Some(rule) = self.rules.loss_spike {
            if !state.fired_loss_spike && state.losses_this_round >= rule.min_count {
                let losses = state.losses_this_round as f64;
                let rate = losses / (losses + delta.unwrap_or(0) as f64);
                if rate >= rule.rate {
                    state.fired_loss_spike = true;
                    fired.push(Alert {
                        rule: "loss_spike".to_string(),
                        round,
                        severity: rule.severity,
                        message: format!(
                            "round {round} lost {} deliver(ies) — loss rate {rate:.2} over threshold {:.2}",
                            state.losses_this_round, rule.rate
                        ),
                        value: rate,
                        threshold: rule.rate,
                    });
                }
            }
        }

        // Churn storm: invalidated in-flight deliveries in this round.
        if let Some(rule) = self.rules.churn_storm {
            if !state.fired_churn_storm && state.invalidated_this_round >= rule.invalidated {
                state.fired_churn_storm = true;
                fired.push(Alert {
                    rule: "churn_storm".to_string(),
                    round,
                    severity: rule.severity,
                    message: format!(
                        "round {round} invalidated {} in-flight deliver(ies) (threshold {})",
                        state.invalidated_this_round, rule.invalidated
                    ),
                    value: state.invalidated_this_round as f64,
                    threshold: rule.invalidated as f64,
                });
            }
        }

        // Curve rules need the knowledge-curve point.
        if let Some(p) = known_pairs {
            let complete = ctx.total_pairs.is_some_and(|t| p >= t);
            if p > state.best_known || !state.curve_started {
                state.best_known = p;
                state.best_known_round = round;
                state.curve_started = true;
            } else if let Some(rule) = self.rules.flatline {
                // Flatline: rounds elapsed since the curve last moved.
                let stuck = round.saturating_sub(state.best_known_round);
                if !state.fired_flatline && !complete && stuck >= rule.rounds {
                    state.fired_flatline = true;
                    fired.push(Alert {
                        rule: "flatline".to_string(),
                        round,
                        severity: rule.severity,
                        message: format!(
                            "knowledge curve flat at {} pair(s) for {stuck} round(s) (threshold {})",
                            state.best_known, rule.rounds
                        ),
                        value: stuck as f64,
                        threshold: rule.rounds as f64,
                    });
                }
            }
            state.window.push((round, p));
            if state.window.len() > PROJECTION_WINDOW {
                state.window.remove(0);
            }

            if let (Some(rule), Some(bound), Some(total)) =
                (self.rules.bound, ctx.bound, ctx.total_pairs)
            {
                if !state.fired_bound && !complete {
                    let rounds_done = round + 1;
                    if rounds_done >= bound {
                        // The bound is actually crossed and gossip is
                        // still incomplete.
                        state.fired_bound = true;
                        fired.push(Alert {
                            rule: "bound".to_string(),
                            round,
                            severity: rule.severity,
                            message: format!(
                                "round {round} complete with {p} of {total} pair(s): the n + r = {bound} bound is crossed"
                            ),
                            value: rounds_done as f64,
                            threshold: bound as f64,
                        });
                    } else if rounds_done * 4 >= bound && state.window.len() >= PROJECTION_WINDOW {
                        // Projection: extrapolate the recent slope. Only
                        // judged past a quarter of the bound AND once the
                        // window is full — the curve's warm-up rounds
                        // under-estimate the pipelined rate, and a partial
                        // window still contains them (fig4's clean run
                        // projects 21 > 19 while round 0's slow start is
                        // in view, then ~19 once it ages out) — and only
                        // fired when the projection stays over
                        // bound + margin for `sustain` rounds.
                        let (r0, p0) = state.window[0];
                        let dr = round.saturating_sub(r0) as f64;
                        let dp = p.saturating_sub(p0) as f64;
                        let slope = if dr > 0.0 { dp / dr } else { 0.0 };
                        let projected = if slope > 0.0 {
                            rounds_done as f64 + (total - p) as f64 / slope
                        } else {
                            f64::INFINITY
                        };
                        let limit = bound as f64 * (1.0 + rule.margin_pct / 100.0);
                        if projected > limit {
                            state.over_projection += 1;
                        } else {
                            state.over_projection = 0;
                        }
                        if state.over_projection >= rule.sustain {
                            state.fired_bound = true;
                            let shown = if projected.is_finite() {
                                format!("{projected:.0}")
                            } else {
                                "never".to_string()
                            };
                            fired.push(Alert {
                                rule: "bound".to_string(),
                                round,
                                severity: rule.severity,
                                message: format!(
                                    "projected completion at round {shown} exceeds n + r = {bound} (margin {:.0}%)",
                                    rule.margin_pct
                                ),
                                value: if projected.is_finite() {
                                    projected
                                } else {
                                    f64::MAX
                                },
                                threshold: bound as f64,
                            });
                        }
                    }
                }
            }
        }

        state.last_round_end = Some(now);
        state.last_round = round;
        state.losses_this_round = 0;
        state.invalidated_this_round = 0;
        drop(state);

        for a in &fired {
            self.push(a.clone());
        }
        fired
    }

    /// Accounts one suppressed delivery (and its cause) for the per-round
    /// loss / churn-storm accumulators.
    fn on_loss(&self, cause: Option<&str>) {
        let mut state = Self::lock(&self.state);
        if cause == Some("churn_invalidated") {
            state.invalidated_this_round += 1;
        } else {
            state.losses_this_round += 1;
        }
    }

    /// Judges a repair-epoch start against the epoch budget.
    fn on_epoch_start(&self, epoch: u64) -> Vec<Alert> {
        let Some(rule) = self.rules.epoch_budget else {
            return Vec::new();
        };
        let ctx = *Self::lock(&self.ctx);
        let Some(max_epochs) = ctx.max_epochs else {
            return Vec::new();
        };
        let mut state = Self::lock(&self.state);
        if state.fired_epoch_budget || epoch == 0 {
            return Vec::new();
        }
        let threshold = (rule.fraction * max_epochs as f64).max(1.0);
        if (epoch as f64) < threshold {
            return Vec::new();
        }
        state.fired_epoch_budget = true;
        let round = state.last_round;
        drop(state);
        let alert = Alert {
            rule: "epoch_budget".to_string(),
            round,
            severity: rule.severity,
            message: format!(
                "repair epoch {epoch} reached {:.0}% of the {max_epochs}-epoch budget",
                100.0 * epoch as f64 / max_epochs as f64
            ),
            value: epoch as f64,
            threshold,
        };
        self.push(alert.clone());
        vec![alert]
    }
}

/// The watchdog recorder decorator: forwards every call to `inner`
/// untouched, judges the stream against its [`RuleSet`], and emits fired
/// alerts downstream as `alert` events plus `alerts/<rule>/<severity>`
/// counters.
///
/// Composes like `Paced`: wrap it around the registry/flight tee and
/// hand the engine to the executor. Place it *inside* any pacing wrapper
/// so the stall rule sees real wall cadence.
pub struct AlertEngine<'r> {
    inner: &'r dyn Recorder,
    sink: Arc<AlertSink>,
}

impl<'r> AlertEngine<'r> {
    /// Wraps `inner` with the given rule set.
    pub fn new(inner: &'r dyn Recorder, rules: RuleSet) -> AlertEngine<'r> {
        AlertEngine {
            inner,
            sink: Arc::new(AlertSink::new(rules)),
        }
    }

    /// Supplies Theorem 1's `n + r` bound (arming the `bound` rule).
    pub fn bound(self, bound: u64) -> Self {
        AlertSink::lock(&self.sink.ctx).bound = Some(bound);
        self
    }

    /// Supplies the complete-gossip pair total (`n * n_msgs`).
    pub fn total_pairs(self, total: u64) -> Self {
        AlertSink::lock(&self.sink.ctx).total_pairs = Some(total);
        self
    }

    /// Supplies the repair-epoch budget (arming `epoch_budget`).
    pub fn max_epochs(self, max_epochs: u64) -> Self {
        AlertSink::lock(&self.sink.ctx).max_epochs = Some(max_epochs);
        self
    }

    /// The shared alert state, for `/alerts`, `/healthz`, and exit codes.
    pub fn sink(&self) -> Arc<AlertSink> {
        Arc::clone(&self.sink)
    }

    /// Emits every sink alert not yet forwarded downstream — the ones
    /// this engine just fired *and* any the server-side wall-clock poll
    /// fired in the meantime (those land in the sink without a recorder
    /// in reach, and would otherwise never hit the flight record or the
    /// registry).
    fn flush_pending(&self) {
        for a in self.sink.take_unemitted() {
            self.emit(&a);
        }
    }

    /// Emits one fired alert downstream: a structured `alert` event (the
    /// flight recorder encodes it as an ALERT record, the live registry
    /// streams it on `/events`) plus the labeled total counter.
    fn emit(&self, a: &Alert) {
        self.inner.event(
            "alert",
            &[
                ("rule", Value::String(a.rule.clone())),
                ("round", Value::from_u64(a.round)),
                ("severity", Value::String(a.severity.label().to_string())),
                ("message", Value::String(a.message.clone())),
                ("value", Value::from_f64(a.value)),
                ("threshold", Value::from_f64(a.threshold)),
            ],
        );
        self.inner
            .counter(&format!("alerts/{}/{}", a.rule, a.severity.label()), 1);
    }
}

fn field<'v>(fields: &'v [(&str, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
}

impl Recorder for AlertEngine<'_> {
    fn enabled(&self) -> bool {
        // The watchdog judges even when the inner sink keeps nothing
        // (e.g. alerts over a NoopRecorder still fire).
        true
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        self.inner.span_observe(path, nanos);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        self.inner.event(name, fields);
        match name {
            // Both the oracle's per-round probe and the kernel's
            // round_end mark a completed round.
            "round" | "round_end" => {
                if let Some(round) = field(fields, "round").and_then(Value::as_u64) {
                    self.sink
                        .on_round_end(round, field(fields, "known_pairs").and_then(Value::as_u64));
                }
            }
            "loss" => self
                .sink
                .on_loss(field(fields, "cause").and_then(Value::as_str)),
            "epoch_start" => {
                if let Some(epoch) = field(fields, "epoch").and_then(Value::as_u64) {
                    self.sink.on_epoch_start(epoch);
                }
            }
            _ => {}
        }
        // Every event drains the sink's unemitted tail, so alerts the
        // wall-clock poll fired from the server thread still reach the
        // flight record and the registry at the next recorded event.
        self.flush_pending();
    }

    fn wants_transmissions(&self) -> bool {
        self.inner.wants_transmissions()
    }

    fn transmission(&self, round: usize, msg: u32, from: u32, dests: &[u32]) {
        self.inner.transmission(round, msg, from, dests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, NoopRecorder};
    use std::str::FromStr as _;

    fn round_end(engine: &AlertEngine<'_>, round: u64, known_pairs: u64) {
        engine.event(
            "round_end",
            &[
                ("round", Value::from_u64(round)),
                ("known_pairs", Value::from_u64(known_pairs)),
            ],
        );
    }

    fn loss(engine: &AlertEngine<'_>, cause: &str) {
        engine.event(
            "loss",
            &[
                ("round", Value::from_u64(0)),
                ("msg", Value::from_u64(0)),
                ("from", Value::from_u64(0)),
                ("to", Value::from_u64(1)),
                ("cause", Value::String(cause.to_string())),
            ],
        );
    }

    /// A rule set with only the given rules armed.
    fn only(f: impl FnOnce(&mut RuleSet)) -> RuleSet {
        let mut set = RuleSet::none();
        f(&mut set);
        set
    }

    #[test]
    fn clean_run_fires_nothing_with_defaults() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(&noop, RuleSet::default())
            .bound(10)
            .total_pairs(36)
            .max_epochs(8);
        engine.event("epoch_start", &[("epoch", Value::from_u64(0))]);
        for (t, p) in [(0, 10), (1, 16), (2, 24), (3, 30), (4, 36)] {
            round_end(&engine, t, p);
        }
        assert!(engine.sink().is_empty());
        assert!(!engine.sink().has_critical());
    }

    #[test]
    fn stall_fires_once_when_the_round_cadence_blows_the_budget() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.stall = Some(StallRule {
                    budget_ms: 1,
                    severity: Severity::Critical,
                })
            }),
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        round_end(&engine, 0, 5);
        std::thread::sleep(std::time::Duration::from_millis(10));
        round_end(&engine, 1, 6);
        let sink = engine.sink();
        let alerts = sink.alerts();
        assert_eq!(alerts.len(), 1, "single-shot: {alerts:?}");
        assert_eq!(alerts[0].rule, "stall");
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert!(alerts[0].value > alerts[0].threshold);
        assert!(sink.has_critical());
    }

    #[test]
    fn poll_catches_a_fully_hung_run_and_disarms_when_done() {
        let sink = {
            let noop = NoopRecorder;
            let engine = AlertEngine::new(
                &noop,
                only(|s| {
                    s.stall = Some(StallRule {
                        budget_ms: 1,
                        severity: Severity::Critical,
                    })
                }),
            );
            engine.sink()
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        let fired = sink.poll().expect("stall fires with no events at all");
        assert_eq!(fired.rule, "stall");
        assert!(sink.poll().is_none(), "latched");

        let done_sink = {
            let noop = NoopRecorder;
            let engine = AlertEngine::new(
                &noop,
                only(|s| {
                    s.stall = Some(StallRule {
                        budget_ms: 1,
                        severity: Severity::Critical,
                    })
                }),
            );
            engine.sink()
        };
        done_sink.set_done();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(done_sink.poll().is_none(), "done runs are not stalled");
    }

    #[test]
    fn flatline_fires_after_k_rounds_without_progress() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.flatline = Some(FlatlineRule {
                    rounds: 3,
                    severity: Severity::Warn,
                })
            }),
        );
        round_end(&engine, 0, 10);
        round_end(&engine, 1, 12);
        for t in 2..=3 {
            round_end(&engine, t, 12);
        }
        assert!(engine.sink().is_empty(), "2 stuck rounds < threshold 3");
        round_end(&engine, 4, 12);
        let alerts = engine.sink().alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "flatline");
        assert_eq!(alerts[0].round, 4);
        assert_eq!(alerts[0].value, 3.0);
    }

    #[test]
    fn bound_breach_fires_when_the_bound_is_crossed_incomplete() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.bound = Some(BoundRule {
                    margin_pct: 10.0,
                    // Sustain high enough that the projection path never
                    // fires here; this test pins the actual-breach path.
                    sustain: 100,
                    severity: Severity::Critical,
                })
            }),
        )
        .bound(5)
        .total_pairs(100);
        for t in 0..4 {
            round_end(&engine, t, 10 + t);
        }
        assert!(engine.sink().is_empty());
        round_end(&engine, 4, 14); // rounds_done = 5 = bound, 14 < 100
        let alerts = engine.sink().alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "bound");
        assert!(alerts[0].message.contains("crossed"));
        assert!(engine.sink().has_critical());
    }

    #[test]
    fn bound_projection_fires_before_the_bound_is_crossed() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.bound = Some(BoundRule {
                    margin_pct: 10.0,
                    sustain: 3,
                    severity: Severity::Critical,
                })
            }),
        )
        .bound(100)
        .total_pairs(10_000);
        // Slope 10/round from round 25 on: projected completion ~= 1000,
        // way past 110. Must fire after 3 sustained projections, long
        // before round 100.
        let mut fired_at = None;
        for t in 25..60 {
            round_end(&engine, t, 100 + 10 * t);
            if !engine.sink().is_empty() {
                fired_at = Some(t);
                break;
            }
        }
        let fired_at = fired_at.expect("projection fired");
        assert!(fired_at < 99, "fired before the bound was crossed");
        let alerts = engine.sink().alerts();
        assert_eq!(alerts[0].rule, "bound");
        assert!(alerts[0].message.contains("projected"));
        assert!(alerts[0].value > 110.0);
    }

    #[test]
    fn clean_on_pace_run_never_trips_the_projection() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(&noop, RuleSet::default())
            .bound(40)
            .total_pairs(1024);
        // 32 pairs per round completes exactly at round 31 < bound 40.
        for t in 0..32u64 {
            round_end(&engine, t, 32 * (t + 1));
        }
        assert!(engine.sink().is_empty(), "{:?}", engine.sink().alerts());
    }

    #[test]
    fn loss_spike_fires_on_rate_and_min_count() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.loss_spike = Some(LossSpikeRule {
                    rate: 0.5,
                    min_count: 4,
                    severity: Severity::Warn,
                })
            }),
        );
        round_end(&engine, 0, 10);
        for _ in 0..3 {
            loss(&engine, "sampled");
        }
        round_end(&engine, 1, 10); // 3 losses < min_count
        assert!(engine.sink().is_empty());
        for _ in 0..6 {
            loss(&engine, "sampled");
        }
        round_end(&engine, 2, 12); // 6 lost vs 2 delivered: rate 0.75
        let alerts = engine.sink().alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "loss_spike");
        assert_eq!(alerts[0].value, 0.75);
    }

    #[test]
    fn epoch_budget_fires_at_the_configured_fraction() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.epoch_budget = Some(EpochBudgetRule {
                    fraction: 0.75,
                    severity: Severity::Warn,
                })
            }),
        )
        .max_epochs(4);
        engine.event("epoch_start", &[("epoch", Value::from_u64(0))]);
        engine.event("epoch_start", &[("epoch", Value::from_u64(2))]);
        assert!(engine.sink().is_empty(), "2 < 0.75 * 4");
        engine.event("epoch_start", &[("epoch", Value::from_u64(3))]);
        let alerts = engine.sink().alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "epoch_budget");
        assert_eq!(alerts[0].value, 3.0);
    }

    #[test]
    fn churn_storm_fires_on_invalidated_deliveries_per_round() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.churn_storm = Some(ChurnStormRule {
                    invalidated: 3,
                    severity: Severity::Warn,
                })
            }),
        );
        loss(&engine, "churn_invalidated");
        loss(&engine, "churn_invalidated");
        round_end(&engine, 0, 5);
        assert!(engine.sink().is_empty(), "2 < 3");
        for _ in 0..3 {
            loss(&engine, "churn_invalidated");
        }
        round_end(&engine, 1, 6);
        let alerts = engine.sink().alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "churn_storm");
        assert_eq!(alerts[0].value, 3.0);
    }

    #[test]
    fn engine_forwards_and_emits_downstream() {
        let inner = MetricsRecorder::new();
        let engine = AlertEngine::new(
            &inner,
            only(|s| {
                s.flatline = Some(FlatlineRule {
                    rounds: 1,
                    severity: Severity::Info,
                })
            }),
        );
        engine.counter("c", 2);
        engine.gauge("g", 1.5);
        round_end(&engine, 0, 5);
        round_end(&engine, 1, 5); // flatline fires
        assert_eq!(inner.counter_value("c"), 2, "forwards verbatim");
        assert_eq!(inner.counter_value("alerts/flatline/info"), 1);
        // 2 round_end events + 1 alert event forwarded downstream.
        assert_eq!(inner.events_emitted(), 3);
        assert!(!engine.sink().has_critical(), "info does not degrade");
    }

    #[test]
    fn poll_fired_alerts_flush_downstream_at_the_next_event() {
        let inner = MetricsRecorder::new();
        let engine = AlertEngine::new(
            &inner,
            only(|s| {
                s.stall = Some(StallRule {
                    budget_ms: 0,
                    severity: Severity::Critical,
                })
            }),
        );
        let sink = engine.sink();
        // The server-side wall-clock poll fires with no recorder in
        // reach: the alert is in the sink but not downstream yet.
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sink.poll().is_some());
        assert_eq!(inner.counter_value("alerts/stall/critical"), 0);
        assert_eq!(inner.events_emitted(), 0);
        // Any recorded event drains the unemitted tail downstream...
        round_end(&engine, 0, 5);
        assert_eq!(inner.counter_value("alerts/stall/critical"), 1);
        // 1 round_end + 1 flushed alert event.
        assert_eq!(inner.events_emitted(), 2);
        // ...exactly once, and the single-shot latch spans both paths.
        round_end(&engine, 1, 10);
        assert_eq!(inner.counter_value("alerts/stall/critical"), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn rule_file_replaces_the_default_set() {
        let set = RuleSet::from_str(
            r#"{"schema_version": 1, "rules": [
                {"rule": "stall", "severity": "warn", "budget_ms": 250},
                {"rule": "bound", "margin_pct": 25, "sustain": 5}
            ]}"#,
        )
        .expect("parses");
        let stall = set.stall.expect("stall configured");
        assert_eq!(stall.budget_ms, 250);
        assert_eq!(stall.severity, Severity::Warn);
        let bound = set.bound.expect("bound configured");
        assert_eq!(bound.margin_pct, 25.0);
        assert_eq!(bound.sustain, 5);
        assert_eq!(bound.severity, Severity::Critical, "default severity");
        assert!(set.flatline.is_none(), "unlisted rules are disabled");
        assert!(set.loss_spike.is_none());

        assert!(RuleSet::from_str(r#"{"rules": [{"rule": "nonsense"}]}"#).is_err());
        assert!(RuleSet::from_str(r#"{"rules": [{"severity": "warn"}]}"#).is_err());
        assert!(RuleSet::from_str(r#"{"schema_version": 99, "rules": []}"#).is_err());
        assert!(
            RuleSet::from_str(r#"{"rules": [{"rule": "stall", "severity": "loud"}]}"#).is_err()
        );
    }

    #[test]
    fn sink_artifact_shape_and_counts() {
        let noop = NoopRecorder;
        let engine = AlertEngine::new(
            &noop,
            only(|s| {
                s.flatline = Some(FlatlineRule {
                    rounds: 1,
                    severity: Severity::Warn,
                })
            }),
        );
        round_end(&engine, 0, 5);
        round_end(&engine, 1, 5);
        let sink = engine.sink();
        let doc = sink.to_value();
        assert_eq!(doc["schema_version"].as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(doc["kind"].as_str(), Some("alerts"));
        assert_eq!(doc["count"].as_u64(), Some(1));
        assert_eq!(doc["critical"].as_bool(), Some(false));
        let a = &doc["alerts"][0];
        assert_eq!(a["rule"].as_str(), Some("flatline"));
        assert_eq!(a["severity"].as_str(), Some("warn"));
        assert!(a["value"].as_f64().is_some());
        assert!(a["threshold"].as_f64().is_some());
        assert_eq!(
            sink.counts(),
            vec![(("flatline".to_string(), "warn"), 1u64)]
        );
    }
}
