//! Property tests for `Histogram::merge`, the primitive `LiveRegistry`
//! uses to aggregate per-thread recorders without draining them: merging
//! two histograms must be indistinguishable from recording the
//! concatenated sample streams into one.

use gossip_telemetry::{Histogram, LiveRegistry, Recorder};
use proptest::prelude::*;

fn record_all(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_equals_recording_concatenated_samples(
        a in proptest::collection::vec(0u64..100_000, 0..64),
        b in proptest::collection::vec(0u64..100_000, 0..64),
    ) {
        // The vendored proptest only generates integers; scale into
        // non-integral floats so ordering/summary bugs can't hide.
        let a: Vec<f64> = a.into_iter().map(|x| x as f64 / 16.0).collect();
        let b: Vec<f64> = b.into_iter().map(|x| x as f64 / 16.0).collect();

        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let reference = record_all(&concat);

        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.count(), a.len() + b.len());
        // The rendered summary (count/sum/min/max/percentiles) agrees too.
        prop_assert_eq!(
            serde_json::to_string(&merged.summary(1.0)).unwrap(),
            serde_json::to_string(&reference.summary(1.0)).unwrap()
        );
    }

    #[test]
    fn registry_merge_equals_single_registry(
        a in proptest::collection::vec(0u64..1_000, 0..32),
        b in proptest::collection::vec(0u64..1_000, 0..32),
    ) {
        let shard_a = LiveRegistry::new();
        let shard_b = LiveRegistry::new();
        let whole = LiveRegistry::new();
        for &v in &a {
            shard_a.observe("lat", v as f64);
            shard_a.counter("n", v);
            whole.observe("lat", v as f64);
            whole.counter("n", v);
        }
        for &v in &b {
            shard_b.observe("lat", v as f64);
            shard_b.counter("n", v);
            whole.observe("lat", v as f64);
            whole.counter("n", v);
        }
        shard_a.merge(&shard_b);
        prop_assert_eq!(
            shard_a.histogram("lat").unwrap_or_default(),
            whole.histogram("lat").unwrap_or_default()
        );
        prop_assert_eq!(shard_a.counter_value("n"), whole.counter_value("n"));
    }
}
